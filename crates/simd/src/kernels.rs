//! The dense f64 kernels, each compiled in two flavours from one body.
//!
//! Every kernel follows the same pattern: a private `#[inline(always)]`
//! `*_impl` holds the arithmetic; a `#[target_feature(enable = "avx2")]`
//! wrapper re-compiles that body with 256-bit lanes available; the
//! public function dispatches between them. Because both flavours
//! inline the *same* expression sequence and Rust neither contracts
//! (`a*b + c` → FMA) nor reassociates floating point, the elementwise
//! kernels are bit-identical across dispatch modes. The reductions
//! ([`dot`], [`sum`]) hard-code a four-accumulator association in the
//! shared body for the same reason — see the crate docs.
//!
//! `quad_poly` / `clamp_watts` here are deliberate local copies of the
//! canonical `trickledown` definitions (this crate sits below
//! `trickledown` in the dependency graph, so it cannot import them).
//! `crates/fleet/tests/quad_crosscheck.rs` pins the kernel outputs
//! against the canonical helpers bit for bit, so the copies cannot
//! drift silently.

use crate::Dispatch;

/// Elements per unrolled step in the elementwise kernels; two 256-bit
/// registers of f64 lanes under AVX2.
const LANES: usize = 8;

/// Accumulator count in the reductions ([`dot`], [`sum`]): one 256-bit
/// register of f64 lanes. Fixed so both dispatch flavours (and any
/// future wider one) share one documented association.
const ACCS: usize = 4;

/// Local copy of [`trickledown::quad_poly`]'s expression —
/// `dc + lin·x + quad·x_sq` in exactly this association.
#[inline(always)]
fn quad_poly(dc: f64, lin: f64, quad: f64, x: f64, x_sq: f64) -> f64 {
    dc + lin * x + quad * x_sq
}

/// Local copy of [`trickledown::clamp_watts`]'s comparison sequence
/// (`< 0`, then `> ceil`, else identity; NaN passes through).
#[inline(always)]
fn clamp_watts(w: f64, ceil: f64) -> f64 {
    if w < 0.0 {
        0.0
    } else if w > ceil {
        ceil
    } else {
        w
    }
}

/// Defines the AVX2 recompilation of `$impl` and the public dispatcher
/// `$name` choosing between the two flavours.
///
/// The AVX2 wrapper is `unsafe fn` purely because of `target_feature`;
/// the dispatcher re-verifies hardware support before every wide call,
/// so a hand-built [`Dispatch::Wide`] on non-AVX2 hardware degrades to
/// the scalar flavour instead of hitting undefined behaviour.
macro_rules! wide_kernel {
    (
        $(#[$doc:meta])*
        pub fn $name:ident[$impl:ident / $avx2:ident](
            $($arg:ident: $ty:ty),* $(,)?
        );
    ) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2($($arg: $ty),*) {
            $impl($($arg),*)
        }

        $(#[$doc])*
        // Inline the dispatcher itself (a two-way match) so callers in
        // other crates pay no call overhead reaching it; the scalar
        // flavour then inlines fully, while the AVX2 flavour stays an
        // out-of-line `target_feature` call as it must.
        #[inline]
        pub fn $name(d: Dispatch, $($arg: $ty),*) {
            match d {
                Dispatch::Scalar => $impl($($arg),*),
                Dispatch::Wide => {
                    #[cfg(target_arch = "x86_64")]
                    if crate::wide_available() {
                        // SAFETY: AVX2 support verified on the line
                        // above; the wrapper has no other obligations.
                        return unsafe { $avx2($($arg),*) };
                    }
                    $impl($($arg),*)
                }
            }
        }
    };
    (
        $(#[$doc:meta])*
        pub fn $name:ident[$impl:ident / $avx2:ident](
            $($arg:ident: $ty:ty),* $(,)?
        ) -> $ret:ty;
    ) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2($($arg: $ty),*) -> $ret {
            $impl($($arg),*)
        }

        $(#[$doc])*
        #[inline]
        pub fn $name(d: Dispatch, $($arg: $ty),*) -> $ret {
            match d {
                Dispatch::Scalar => $impl($($arg),*),
                Dispatch::Wide => {
                    #[cfg(target_arch = "x86_64")]
                    if crate::wide_available() {
                        // SAFETY: AVX2 support verified on the line
                        // above; the wrapper has no other obligations.
                        return unsafe { $avx2($($arg),*) };
                    }
                    $impl($($arg),*)
                }
            }
        }
    };
}

#[inline(always)]
fn fill_impl(out: &mut [f64], v: f64) {
    for o in out.iter_mut() {
        *o = v;
    }
}

wide_kernel! {
    /// `out[i] = v`.
    pub fn fill[fill_impl / fill_avx2](out: &mut [f64], v: f64);
}

#[inline(always)]
fn axpy_impl(out: &mut [f64], a: f64, x: &[f64]) {
    let mut out_it = out.chunks_exact_mut(LANES);
    let mut x_it = x.chunks_exact(LANES);
    for (oc, xc) in out_it.by_ref().zip(x_it.by_ref()) {
        for (o, &xv) in oc.iter_mut().zip(xc) {
            *o += a * xv;
        }
    }
    for (o, &xv) in out_it.into_remainder().iter_mut().zip(x_it.remainder()) {
        *o += a * xv;
    }
}

wide_kernel! {
    /// `out[i] += a · x[i]`. Elementwise: bit-identical across dispatch
    /// modes.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length.
    pub fn axpy[axpy_checked / axpy_avx2](out: &mut [f64], a: f64, x: &[f64]);
}

#[inline(always)]
fn axpy_checked(out: &mut [f64], a: f64, x: &[f64]) {
    assert_eq!(out.len(), x.len(), "axpy length mismatch");
    axpy_impl(out, a, x);
}

#[inline(always)]
fn quadratic_impl(out: &mut [f64], dc: f64, lin: f64, quad: f64, x: &[f64], x_sq: &[f64]) {
    assert_eq!(out.len(), x.len(), "quadratic length mismatch");
    assert_eq!(out.len(), x_sq.len(), "quadratic length mismatch");
    for ((o, &xv), &sv) in out.iter_mut().zip(x).zip(x_sq) {
        *o = quad_poly(dc, lin, quad, xv, sv);
    }
}

wide_kernel! {
    /// `out[i] = dc + lin·x[i] + quad·x_sq[i]` — one whole quadratic
    /// model per pass, in [`trickledown::quad_poly`]'s association.
    /// Elementwise: bit-identical across dispatch modes.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length.
    pub fn quadratic[quadratic_impl / quadratic_avx2](
        out: &mut [f64], dc: f64, lin: f64, quad: f64, x: &[f64], x_sq: &[f64],
    );
}

#[inline(always)]
fn quadratic_acc_impl(out: &mut [f64], lin: f64, quad: f64, x: &[f64], x_sq: &[f64]) {
    assert_eq!(out.len(), x.len(), "quadratic_acc length mismatch");
    assert_eq!(out.len(), x_sq.len(), "quadratic_acc length mismatch");
    for ((o, &xv), &sv) in out.iter_mut().zip(x).zip(x_sq) {
        *o += quad_poly(0.0, lin, quad, xv, sv);
    }
}

wide_kernel! {
    /// `out[i] += 0 + lin·x[i] + quad·x_sq[i]` — the accumulate form
    /// for multi-input models. Elementwise: bit-identical across
    /// dispatch modes.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length.
    pub fn quadratic_acc[quadratic_acc_impl / quadratic_acc_avx2](
        out: &mut [f64], lin: f64, quad: f64, x: &[f64], x_sq: &[f64],
    );
}

#[inline(always)]
fn clamp_impl(out: &mut [f64], dc: f64, peak1: f64, ncpus: &[f64]) -> u64 {
    assert_eq!(out.len(), ncpus.len(), "clamp_predictions length mismatch");
    let mut clamped = 0u64;
    for (o, &n) in out.iter_mut().zip(ncpus) {
        let c = clamp_watts(*o, dc + peak1 * n);
        if c.to_bits() != o.to_bits() {
            clamped += 1;
        }
        *o = c;
    }
    clamped
}

wide_kernel! {
    /// `out[i] = clamp_watts(out[i], dc + peak1 · ncpus[i])`, returning
    /// how many entries changed (for the pipeline-health counters).
    /// Elementwise, comparison sequence identical to
    /// [`trickledown::clamp_watts`]: bit-identical across dispatch
    /// modes, including NaN pass-through.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length.
    pub fn clamp_predictions[clamp_impl / clamp_avx2](
        out: &mut [f64], dc: f64, peak1: f64, ncpus: &[f64],
    ) -> u64;
}

#[inline(always)]
fn add_assign_impl(out: &mut [f64], x: &[f64]) {
    assert_eq!(out.len(), x.len(), "add_assign length mismatch");
    let mut out_it = out.chunks_exact_mut(LANES);
    let mut x_it = x.chunks_exact(LANES);
    for (oc, xc) in out_it.by_ref().zip(x_it.by_ref()) {
        for (o, &xv) in oc.iter_mut().zip(xc) {
            *o += xv;
        }
    }
    for (o, &xv) in out_it.into_remainder().iter_mut().zip(x_it.remainder()) {
        *o += xv;
    }
}

wide_kernel! {
    /// `out[i] += x[i]`. Elementwise: bit-identical across dispatch
    /// modes.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length.
    pub fn add_assign[add_assign_impl / add_assign_avx2](out: &mut [f64], x: &[f64]);
}

#[inline(always)]
fn mask_in_range_impl(x: &[f64], lo: f64, hi: f64, mask: &mut [u8]) {
    assert_eq!(x.len(), mask.len(), "mask_in_range length mismatch");
    for (m, &v) in mask.iter_mut().zip(x) {
        *m &= (lo <= v && v <= hi) as u8;
    }
}

wide_kernel! {
    /// `mask[i] &= (lo ≤ x[i] ≤ hi)` — an AND-accumulating column
    /// bounds check (NaN fails). Conjunction passes over a window's
    /// columns build the batched sanity mask the wire health ledger
    /// consumes. Pure comparisons, elementwise: bit-identical across
    /// dispatch modes.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length.
    pub fn mask_in_range[mask_in_range_impl / mask_in_range_avx2](
        x: &[f64], lo: f64, hi: f64, mask: &mut [u8],
    );
}

#[inline(always)]
fn mask_nonneg_le_scaled_impl(x: &[f64], cap: f64, scale: &[f64], mask: &mut [u8]) {
    assert_eq!(
        x.len(),
        scale.len(),
        "mask_nonneg_le_scaled length mismatch"
    );
    assert_eq!(x.len(), mask.len(), "mask_nonneg_le_scaled length mismatch");
    for ((m, &v), &s) in mask.iter_mut().zip(x).zip(scale) {
        *m &= (v >= 0.0 && v <= cap * s) as u8;
    }
}

wide_kernel! {
    /// `mask[i] &= (0 ≤ x[i] ≤ cap · scale[i])` — the AND-accumulating
    /// per-row-scaled cap check (NaN in either operand fails). The one
    /// floating-point operation, `cap · scale[i]`, is elementwise and
    /// unreassociated: bit-identical across dispatch modes, and
    /// identical to a scalar `x <= cap * scale` comparison.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length.
    pub fn mask_nonneg_le_scaled[mask_nonneg_le_scaled_impl / mask_nonneg_le_scaled_avx2](
        x: &[f64], cap: f64, scale: &[f64], mask: &mut [u8],
    );
}

#[inline(always)]
fn dot_impl(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = [0.0f64; ACCS];
    let mut a_it = a.chunks_exact(ACCS);
    let mut b_it = b.chunks_exact(ACCS);
    for (ac, bc) in a_it.by_ref().zip(b_it.by_ref()) {
        for l in 0..ACCS {
            acc[l] += ac[l] * bc[l];
        }
    }
    let mut tail = 0.0;
    for (&x, &y) in a_it.remainder().iter().zip(b_it.remainder()) {
        tail += x * y;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

wide_kernel! {
    /// `Σ a[i]·b[i]` with the fixed four-accumulator association
    /// documented at the crate level: bit-identical across dispatch
    /// modes, a few ulp from a naive sequential sum.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length.
    pub fn dot[dot_impl / dot_avx2](a: &[f64], b: &[f64]) -> f64;
}

#[inline(always)]
fn sum_impl(x: &[f64]) -> f64 {
    let mut acc = [0.0f64; ACCS];
    let mut it = x.chunks_exact(ACCS);
    for c in it.by_ref() {
        for l in 0..ACCS {
            acc[l] += c[l];
        }
    }
    let mut tail = 0.0;
    for &v in it.remainder() {
        tail += v;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

wide_kernel! {
    /// `Σ x[i]` with the fixed four-accumulator association documented
    /// at the crate level: bit-identical across dispatch modes, a few
    /// ulp from a naive sequential sum.
    pub fn sum[sum_impl / sum_avx2](x: &[f64]) -> f64;
}

// --- Integer kernels for the column-planar wire decode ---------------
//
// These operate on integers only, so the bit-identity contract is
// trivial: both flavours run the same two's-complement arithmetic and
// there is no rounding to diverge. They exist as kernels (rather than
// plain loops in `tdp-wire`) so the AVX2 flavour can vectorize the
// widen/xor/shift bodies, and so the forced scalar/wide CI matrix
// covers them like every other hot-path kernel.

#[inline(always)]
fn widen_u8_impl(src: &[u8], dst: &mut [u64]) {
    assert_eq!(src.len(), dst.len(), "widen_u8_to_u64 length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s as u64;
    }
}

wide_kernel! {
    /// `dst[i] = src[i] as u64` — zero-extends a plane of 1-byte lanes.
    /// Integer, elementwise: bit-identical across dispatch modes.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length.
    pub fn widen_u8_to_u64[widen_u8_impl / widen_u8_avx2](src: &[u8], dst: &mut [u64]);
}

#[inline(always)]
fn widen_u16_impl(src: &[u8], dst: &mut [u64]) {
    assert_eq!(src.len(), dst.len() * 2, "widen_u16_to_u64 length mismatch");
    for (d, c) in dst.iter_mut().zip(src.chunks_exact(2)) {
        *d = u16::from_le_bytes([c[0], c[1]]) as u64;
    }
}

wide_kernel! {
    /// `dst[i] = u16::from_le(src[2i..2i+2]) as u64` — zero-extends a
    /// plane of 2-byte little-endian lanes. Integer, elementwise:
    /// bit-identical across dispatch modes.
    ///
    /// # Panics
    ///
    /// Panics unless `src.len() == 2 · dst.len()`.
    pub fn widen_u16_to_u64[widen_u16_impl / widen_u16_avx2](src: &[u8], dst: &mut [u64]);
}

#[inline(always)]
fn widen_u32_impl(src: &[u8], dst: &mut [u64]) {
    assert_eq!(src.len(), dst.len() * 4, "widen_u32_to_u64 length mismatch");
    for (d, c) in dst.iter_mut().zip(src.chunks_exact(4)) {
        *d = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) as u64;
    }
}

wide_kernel! {
    /// `dst[i] = u32::from_le(src[4i..4i+4]) as u64` — zero-extends a
    /// plane of 4-byte little-endian lanes. Integer, elementwise:
    /// bit-identical across dispatch modes.
    ///
    /// # Panics
    ///
    /// Panics unless `src.len() == 4 · dst.len()`.
    pub fn widen_u32_to_u64[widen_u32_impl / widen_u32_avx2](src: &[u8], dst: &mut [u64]);
}

#[inline(always)]
fn zigzag_decode_impl(vals: &mut [u64]) {
    for v in vals.iter_mut() {
        *v = (*v >> 1) ^ 0u64.wrapping_sub(*v & 1);
    }
}

wide_kernel! {
    /// In-place zigzag decode: `v ← (v >> 1) ⊕ −(v & 1)`, leaving the
    /// u64 **bit pattern** of the signed delta so a later
    /// `wrapping_add` reproduces `base + unzigzag(v)` exactly. Integer,
    /// elementwise (shift/and/xor only): bit-identical across dispatch
    /// modes.
    pub fn zigzag_decode_batch[zigzag_decode_impl / zigzag_decode_avx2](vals: &mut [u64]);
}

#[inline(always)]
fn delta_unfold_impl(bases: &[u64], deltas: &mut [u64]) {
    if deltas.is_empty() {
        return;
    }
    assert!(
        !bases.is_empty() && deltas.len().is_multiple_of(bases.len()),
        "delta_unfold length mismatch"
    );
    let stride = deltas.len() / bases.len();
    for (chunk, &base) in deltas.chunks_exact_mut(stride).zip(bases) {
        let mut acc = base;
        for v in chunk.iter_mut() {
            acc = acc.wrapping_add(*v);
            *v = acc;
        }
    }
}

wide_kernel! {
    /// Per-plane wrapping prefix sum: for each base `b = bases[e]` and
    /// its `stride = deltas.len() / bases.len()` consecutive deltas,
    /// rewrites `deltas[e·stride + i] ← b + Σ_{j≤i} deltas[e·stride + j]`
    /// (all adds wrapping). With zigzag-decoded deltas this reproduces
    /// the varint path's `prev.wrapping_add(unzigzag(d) as u64)` chain
    /// exactly. `deltas` empty is a no-op (single-CPU frames). Integer:
    /// bit-identical across dispatch modes.
    ///
    /// # Panics
    ///
    /// Panics if `deltas` is non-empty and its length is not a positive
    /// multiple of `bases.len()`.
    pub fn delta_unfold[delta_unfold_impl / delta_unfold_avx2](bases: &[u64], deltas: &mut [u64]);
}

#[inline(always)]
fn unfold_planes_f64_impl(bases: &[u64], zz: &[u64], out: &mut [f64]) {
    assert!(
        zz.is_empty() || (!bases.is_empty() && zz.len().is_multiple_of(bases.len())),
        "unfold_planes_to_f64 plane length mismatch"
    );
    assert_eq!(
        out.len(),
        bases.len() + zz.len(),
        "unfold_planes_to_f64 output length mismatch"
    );
    let stride = if bases.is_empty() {
        0
    } else {
        zz.len() / bases.len()
    };
    for (e, &base) in bases.iter().enumerate() {
        let dst = &mut out[e * (stride + 1)..(e + 1) * (stride + 1)];
        dst[0] = base as f64;
        let mut acc = base;
        for (slot, &z) in dst[1..].iter_mut().zip(&zz[e * stride..]) {
            acc = acc.wrapping_add((z >> 1) ^ 0u64.wrapping_sub(z & 1));
            *slot = acc as f64;
        }
    }
}

wide_kernel! {
    /// Fused unzigzag + per-plane wrapping prefix sum + u64→f64 widen,
    /// writing event-major lanes with the base first: for each base
    /// `b = bases[e]` and its `stride = zz.len() / bases.len()` raw
    /// zigzag deltas, `out[e·(stride+1)] = b as f64` and
    /// `out[e·(stride+1) + 1 + i] = (b + Σ_{j≤i} unzigzag(zz[e·stride + j]))
    /// as f64` (all adds wrapping) — the varint path's
    /// `prev.wrapping_add(unzigzag(d) as u64)` chain followed by the
    /// same `count as f64` conversion the column fold performs, in one
    /// pass. Integer arithmetic plus one deterministic IEEE conversion
    /// per lane: bit-identical across dispatch modes.
    ///
    /// `zz` empty folds bases only (single-CPU frames).
    ///
    /// # Panics
    ///
    /// Panics if `zz` is non-empty and not a multiple of `bases.len()`,
    /// or if `out.len() != bases.len() + zz.len()`.
    pub fn unfold_planes_to_f64[unfold_planes_f64_impl / unfold_planes_f64_avx2](
        bases: &[u64],
        zz: &[u64],
        out: &mut [f64],
    );
}

/// Events per machine row in the canonical trickle-down layout
/// [`fold_identity_rates`] consumes: cycles, halted, uops, L3 misses,
/// bus transactions, DMA, total interrupts, timer interrupts, disk
/// interrupts — in that wire order.
pub const ROW_FOLD_EVENTS: usize = 9;

/// One chunk of the identity fold: derive all twelve per-CPU rate
/// columns for `B` consecutive CPUs elementwise (the phase the wide
/// flavour vectorises — `B` is a compile-time trip count, so LLVM
/// packs the independent lanes), then reduce them into `out` in CPU
/// order (the phase that must stay scalar: float accumulation order is
/// the bit-identity contract).
#[inline(always)]
fn fold_rate_chunk<const B: usize>(
    ev: &[&[f64]; ROW_FOLD_EVENTS],
    base: usize,
    out: &mut [f64; 12],
) {
    let mut v = [[0.0f64; B]; 12];
    // `i` indexes the inner (lane) dimension of every column — an
    // iterator over `v` would walk the outer (column) dimension.
    #[allow(clippy::needless_range_loop)]
    for i in 0..B {
        let c = base + i;
        let inv = 1.0 / ev[0][c].max(1.0);
        let active = (1.0 - ev[1][c] * inv).clamp(0.0, 1.0);
        let upc = ev[2][c] * inv;
        let l3_kc = (ev[3][c] * inv) * 1_000.0;
        let bus_mc = (ev[4][c] * inv) * 1e6;
        let dma = ev[5][c] * inv;
        let dev = (ev[6][c] * inv - ev[7][c] * inv).max(0.0);
        let disk = ev[8][c] * inv;
        v[0][i] = active;
        v[1][i] = upc;
        v[2][i] = l3_kc;
        v[3][i] = l3_kc * l3_kc;
        v[4][i] = bus_mc;
        v[5][i] = bus_mc * bus_mc;
        v[6][i] = dma;
        v[7][i] = dma * dma;
        v[8][i] = disk;
        v[9][i] = disk * disk;
        v[10][i] = dev;
        v[11][i] = dev * dev;
    }
    for i in 0..B {
        for (o, col) in out.iter_mut().zip(&v) {
            *o += col[i];
        }
    }
}

#[inline(always)]
fn fold_identity_impl(lanes: &[f64], cpus: usize, out: &mut [f64; 12]) {
    assert_eq!(
        lanes.len(),
        ROW_FOLD_EVENTS * cpus,
        "fold_identity_rates geometry mismatch"
    );
    let ev: [&[f64]; ROW_FOLD_EVENTS] = core::array::from_fn(|k| &lanes[k * cpus..(k + 1) * cpus]);
    let mut c = 0;
    while c + 4 <= cpus {
        fold_rate_chunk::<4>(&ev, c, out);
        c += 4;
    }
    while c < cpus {
        fold_rate_chunk::<1>(&ev, c, out);
        c += 1;
    }
}

wide_kernel! {
    /// The canonical-layout lane→row fold: `lanes` is event-major
    /// (`lanes[e · cpus + c]`, nine [`ROW_FOLD_EVENTS`] planes), and
    /// each CPU contributes `active = clamp(1 − halted/cycles)`,
    /// `upc`, `l3·10³`, `bus·10⁶`, `dma`, `disk`, `dev = max(int −
    /// timer, 0)` rates plus the four squares, accumulated into the
    /// twelve `out` columns in CPU order (CPU 0 first). Every rate is
    /// `n · (1/max(cycles, 1))` — the exact expression sequence of the
    /// scalar reference fold — and rates are derived elementwise before
    /// a scalar in-order reduction, so the result is bit-identical
    /// across dispatch modes *and* to the per-CPU scalar accumulation.
    ///
    /// # Panics
    ///
    /// Panics if `lanes.len() != 9 · cpus`.
    pub fn fold_identity_rates[fold_identity_impl / fold_identity_avx2](
        lanes: &[f64],
        cpus: usize,
        out: &mut [f64; 12],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOTH: [Dispatch; 2] = [Dispatch::Scalar, Dispatch::Wide];

    #[test]
    fn fold_identity_rates_matches_per_cpu_reference_bit_for_bit() {
        for d in BOTH {
            for cpus in [1usize, 2, 3, 4, 5, 7, 8, 12, 17] {
                // Lane values spanning zero counts, zero cycles, and
                // large magnitudes — the cases the rate expressions
                // branch on.
                let lanes: Vec<f64> = (0..ROW_FOLD_EVENTS * cpus)
                    .map(|i| match i % 7 {
                        0 => 0.0,
                        1 => 1.0,
                        _ => ((i as f64) * 1.37e5).floor(),
                    })
                    .collect();
                let mut got = [0.0f64; 12];
                fold_identity_rates(d, &lanes, cpus, &mut got);
                // Plain per-CPU reference: the scalar accumulation
                // order the fleet fold has always used.
                let mut want = [0.0f64; 12];
                for c in 0..cpus {
                    let ev = |k: usize| lanes[k * cpus + c];
                    let inv = 1.0 / ev(0).max(1.0);
                    let active = (1.0 - ev(1) * inv).clamp(0.0, 1.0);
                    let l3_kc = (ev(3) * inv) * 1_000.0;
                    let bus_mc = (ev(4) * inv) * 1e6;
                    let dma = ev(5) * inv;
                    let dev = (ev(6) * inv - ev(7) * inv).max(0.0);
                    let disk = ev(8) * inv;
                    let vals = [
                        active,
                        ev(2) * inv,
                        l3_kc,
                        l3_kc * l3_kc,
                        bus_mc,
                        bus_mc * bus_mc,
                        dma,
                        dma * dma,
                        disk,
                        disk * disk,
                        dev,
                        dev * dev,
                    ];
                    for (w, v) in want.iter_mut().zip(vals) {
                        *w += v;
                    }
                }
                for (k, (&g, &w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "{d:?} cpus={cpus} col={k}: {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn elementwise_kernels_match_plain_loops() {
        for d in BOTH {
            for n in [0, 1, 3, 7, 8, 9, 16, 33] {
                let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 3.0).collect();
                let mut out = vec![0.0; n];
                fill(d, &mut out, 2.5);
                assert!(out.iter().all(|&v| v == 2.5));
                axpy(d, &mut out, -1.5, &x);
                add_assign(d, &mut out, &x);
                for (i, &o) in out.iter().enumerate() {
                    assert_eq!(o, 2.5 + -1.5 * x[i] + x[i], "{d:?} n={n} i={i}");
                }
            }
        }
    }

    #[test]
    fn quadratics_match_the_shared_polynomial_bit_for_bit() {
        let x: Vec<f64> = (0..33).map(|i| i as f64 * 0.37 - 4.0).collect();
        let x_sq: Vec<f64> = x.iter().map(|v| v * v).collect();
        let (dc, lin, quad) = (21.6, 10.6e7, -11.1e15);
        for d in BOTH {
            let mut out = vec![0.0; x.len()];
            quadratic(d, &mut out, dc, lin, quad, &x, &x_sq);
            for (i, &o) in out.iter().enumerate() {
                let e = quad_poly(dc, lin, quad, x[i], x_sq[i]);
                assert_eq!(o.to_bits(), e.to_bits(), "{d:?} i={i}");
            }
            quadratic_acc(d, &mut out, 9.18, -45.4, &x, &x_sq);
            for (i, &o) in out.iter().enumerate() {
                let e = quad_poly(dc, lin, quad, x[i], x_sq[i])
                    + quad_poly(0.0, 9.18, -45.4, x[i], x_sq[i]);
                assert_eq!(o.to_bits(), e.to_bits(), "{d:?} i={i}");
            }
        }
    }

    #[test]
    fn clamp_counts_changes_and_saturates() {
        let dc = 21.6;
        let peak1 = 0.5;
        let ncpus = [4.0, 4.0, 4.0, 2.0];
        for d in BOTH {
            let mut out = [-3.0, 30.0, dc + peak1 * 4.0, 10.0];
            assert_eq!(clamp_predictions(d, &mut out, dc, peak1, &ncpus), 2);
            assert_eq!(out[0], 0.0);
            assert_eq!(out[1], dc + peak1 * 4.0);
            // NaN passes through unchanged and uncounted, matching the
            // scalar comparison sequence.
            let mut raw = [f64::NAN, -0.0];
            assert_eq!(clamp_predictions(d, &mut raw, 50.0, 0.0, &[1.0, 1.0]), 0);
            assert!(raw[0].is_nan());
            assert_eq!(raw[1].to_bits(), (-0.0f64).to_bits());
        }
    }

    #[test]
    fn reductions_use_the_documented_association() {
        let x: Vec<f64> = (0..23).map(|i| (i as f64).sin() * 1e3).collect();
        let y: Vec<f64> = (0..23).map(|i| (i as f64).cos() * 1e-3).collect();
        // Reference: the documented 4-accumulator association, written
        // out independently of the kernel body.
        let mut acc = [0.0f64; 4];
        let mut tail = 0.0;
        for (i, (&a, &b)) in x.iter().zip(&y).enumerate() {
            if i < 20 {
                acc[i % 4] += a * b;
            } else {
                tail += a * b;
            }
        }
        let expect = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail;
        for d in BOTH {
            assert_eq!(dot(d, &x, &y).to_bits(), expect.to_bits(), "{d:?}");
        }
        let ones = vec![1.0; 9];
        for d in BOTH {
            assert_eq!(sum(d, &ones), 9.0, "{d:?}");
        }
    }

    #[test]
    fn mask_kernels_and_accumulate_and_reject_non_finites() {
        let x = [
            0.5,
            -0.0,
            4.0,
            -1.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1024.0,
            1024.5,
        ];
        for d in BOTH {
            let mut mask = vec![1u8; x.len()];
            mask_in_range(d, &x, 0.0, 1024.0, &mut mask);
            assert_eq!(mask, [1, 1, 1, 0, 0, 0, 0, 1, 0], "{d:?} in_range");
            // AND-accumulation: a second pass can only clear bits.
            mask_in_range(d, &x, 1.0, 2000.0, &mut mask);
            assert_eq!(mask, [0, 0, 1, 0, 0, 0, 0, 1, 0], "{d:?} accumulated");

            let scale = [2.0; 9];
            let mut mask = vec![1u8; x.len()];
            // cap·scale = 8: nonneg values ≤ 8 survive, NaN/inf/negative
            // (including -0.0 surviving as ≥ 0) handled like the scalar
            // comparisons.
            mask_nonneg_le_scaled(d, &x, 4.0, &scale, &mut mask);
            assert_eq!(mask, [1, 1, 1, 0, 0, 0, 0, 0, 0], "{d:?} scaled");
            // NaN scale fails the ≤ comparison for any x.
            let mut m = vec![1u8; 1];
            mask_nonneg_le_scaled(d, &[1.0], 4.0, &[f64::NAN], &mut m);
            assert_eq!(m, [0], "{d:?} NaN scale");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        axpy(Dispatch::Wide, &mut [0.0; 3], 1.0, &[0.0; 4]);
    }

    #[test]
    fn widen_kernels_zero_extend_le_lanes() {
        let src: Vec<u8> = (0..160u32)
            .map(|i| (i.wrapping_mul(97) & 0xff) as u8)
            .collect();
        for d in BOTH {
            for n in [0usize, 1, 3, 8, 16, 33] {
                let mut out = vec![0u64; n];
                widen_u8_to_u64(d, &src[..n], &mut out);
                for (i, &v) in out.iter().enumerate() {
                    assert_eq!(v, src[i] as u64, "{d:?} u8 n={n} i={i}");
                }
                let mut out = vec![0u64; n];
                widen_u16_to_u64(d, &src[..2 * n], &mut out);
                for (i, &v) in out.iter().enumerate() {
                    let e = u16::from_le_bytes([src[2 * i], src[2 * i + 1]]) as u64;
                    assert_eq!(v, e, "{d:?} u16 n={n} i={i}");
                }
                let mut out = vec![0u64; n];
                widen_u32_to_u64(d, &src[..4 * n], &mut out);
                for (i, &v) in out.iter().enumerate() {
                    let e = u32::from_le_bytes([
                        src[4 * i],
                        src[4 * i + 1],
                        src[4 * i + 2],
                        src[4 * i + 3],
                    ]) as u64;
                    assert_eq!(v, e, "{d:?} u32 n={n} i={i}");
                }
            }
        }
    }

    #[test]
    fn zigzag_batch_matches_the_signed_identity() {
        // zigzag(x) = (x << 1) ^ (x >> 63); the batch decode must invert
        // it bit for bit, leaving the two's-complement pattern.
        let signed: Vec<i64> = vec![0, 1, -1, 63, -64, 127, -128, 128, i64::MAX, i64::MIN];
        let encoded: Vec<u64> = signed
            .iter()
            .map(|&x| ((x << 1) ^ (x >> 63)) as u64)
            .collect();
        for d in BOTH {
            let mut vals = encoded.clone();
            zigzag_decode_batch(d, &mut vals);
            for (i, (&got, &want)) in vals.iter().zip(&signed).enumerate() {
                assert_eq!(got, want as u64, "{d:?} i={i}");
            }
        }
    }

    #[test]
    fn delta_unfold_runs_wrapping_prefix_sums_per_plane() {
        let bases = [100u64, u64::MAX, 7];
        // Stride 2: plane deltas as u64 bit patterns of signed steps.
        let deltas_raw: [i64; 6] = [5, -3, 2, 2, -10, 1];
        let deltas: Vec<u64> = deltas_raw.iter().map(|&v| v as u64).collect();
        for d in BOTH {
            let mut work = deltas.clone();
            delta_unfold(d, &bases, &mut work);
            assert_eq!(work, [105, 102, 1, 3, u64::MAX - 2, u64::MAX - 1]);
            // Empty deltas (single-CPU frames): a no-op for any bases.
            let mut empty: Vec<u64> = Vec::new();
            delta_unfold(d, &bases, &mut empty);
            assert!(empty.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "delta_unfold length mismatch")]
    fn delta_unfold_rejects_ragged_planes() {
        delta_unfold(Dispatch::Scalar, &[1, 2], &mut [0u64; 3]);
    }

    #[test]
    fn unfold_planes_to_f64_matches_the_three_pass_reference() {
        let zig = |x: i64| ((x << 1) ^ (x >> 63)) as u64;
        let bases = [100u64, u64::MAX, 7, 1u64 << 55];
        // Stride 3, including wrap-around and a delta of i64::MIN (the
        // zigzag value u64::MAX, the width-pricing corner case).
        let steps: [i64; 12] = [5, -3, 2, 2, -10, 1, i64::MIN, 1, -1, 0, 1 << 53, -(1 << 53)];
        let zz: Vec<u64> = steps.iter().map(|&v| zig(v)).collect();
        // Reference: the separate zigzag + unfold kernels, then a plain
        // `as f64` conversion, re-laid out event-major.
        let mut ref_deltas = zz.clone();
        zigzag_decode_batch(Dispatch::Scalar, &mut ref_deltas);
        delta_unfold(Dispatch::Scalar, &bases, &mut ref_deltas);
        for d in BOTH {
            let mut out = vec![0.0f64; bases.len() + zz.len()];
            unfold_planes_to_f64(d, &bases, &zz, &mut out);
            for (e, &b) in bases.iter().enumerate() {
                assert_eq!(out[e * 4].to_bits(), (b as f64).to_bits(), "{d:?} base {e}");
                for i in 0..3 {
                    let want = ref_deltas[e * 3 + i] as f64;
                    assert_eq!(
                        out[e * 4 + 1 + i].to_bits(),
                        want.to_bits(),
                        "{d:?} e={e} i={i}"
                    );
                }
            }
            // Empty planes (single-CPU frames): bases only.
            let mut out = vec![0.0f64; bases.len()];
            unfold_planes_to_f64(d, &bases, &[], &mut out);
            for (e, &b) in bases.iter().enumerate() {
                assert_eq!(out[e].to_bits(), (b as f64).to_bits(), "{d:?} solo {e}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unfold_planes_to_f64 plane length mismatch")]
    fn unfold_planes_to_f64_rejects_ragged_planes() {
        unfold_planes_to_f64(Dispatch::Scalar, &[1, 2], &[0u64; 3], &mut [0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "unfold_planes_to_f64 output length mismatch")]
    fn unfold_planes_to_f64_rejects_short_output() {
        unfold_planes_to_f64(Dispatch::Scalar, &[1, 2], &[0u64; 4], &mut [0.0; 5]);
    }
}
