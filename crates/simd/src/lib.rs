//! Runtime-dispatched wide kernels for the estimation hot paths.
//!
//! The trickle-down models (Equations 1–5) are tiny polynomials, so at
//! fleet scale evaluation cost is pure memory-and-arithmetic
//! throughput. This crate holds the dense f64 column kernels in two
//! compiled flavours selected once at startup:
//!
//! * **Scalar** — the kernel body compiled with the build's baseline
//!   target features (SSE2 on `x86_64`);
//! * **Wide** — *the same source body* compiled under
//!   `#[target_feature(enable = "avx2")]`, letting LLVM widen the
//!   unrolled inner loops to 256-bit lanes (4 × f64).
//!
//! # Bit-identity contract
//!
//! Both flavours compile the **identical Rust expression sequence**,
//! and Rust performs no floating-point contraction or reassociation on
//! its own, so for the elementwise kernels ([`fill`], [`axpy`],
//! [`quadratic`], [`quadratic_acc`], [`clamp_predictions`],
//! [`add_assign`], [`mask_in_range`], [`mask_nonneg_le_scaled`]) the
//! two dispatch paths are bit-identical by
//! construction — vector lanes evaluate the same `a·x + b` per element
//! that the scalar loop does, in the same order.
//!
//! The integer kernels for the column-planar wire decode
//! ([`widen_u8_to_u64`], [`widen_u16_to_u64`], [`widen_u32_to_u64`],
//! [`zigzag_decode_batch`], [`delta_unfold`]) are bit-identical across
//! dispatch trivially: two's-complement shifts, xors, and wrapping adds
//! have no rounding to diverge. [`unfold_planes_to_f64`] appends one
//! `u64 → f64` conversion per lane to that integer chain; the
//! conversion is a single IEEE-754 rounding fully determined by its
//! input, so it too is bit-identical across dispatch.
//!
//! The reductions ([`dot`], [`sum`]) cannot be both fast and
//! sequentially associated: they use a fixed four-accumulator
//! association, *written out explicitly in the shared body*, so Scalar
//! and Wide still agree bit for bit with each other. Against a naive
//! left-to-right sum they are reassociated; callers that previously
//! summed sequentially get answers within a few ulp (property-tested in
//! `tests/equivalence.rs`).
//!
//! # Dispatch
//!
//! [`Dispatch::active`] picks the flavour once per process: the
//! `TDP_SIMD` environment variable (`scalar` / `wide`) wins, otherwise
//! AVX2 auto-detection decides. Forcing `wide` on hardware without
//! AVX2 falls back to scalar — [`Dispatch::Wide`] is a *request*, and
//! every kernel re-verifies hardware support before taking the AVX2
//! path, so the unsafe `target_feature` calls stay sound even for a
//! hand-constructed `Dispatch::Wide` on unsupported hardware.

#![deny(unsafe_code)]
#![warn(missing_docs)]

#[allow(unsafe_code)]
pub mod kernels;

pub use kernels::{
    add_assign, axpy, clamp_predictions, delta_unfold, dot, fill, fold_identity_rates,
    mask_in_range, mask_nonneg_le_scaled, quadratic, quadratic_acc, sum, unfold_planes_to_f64,
    widen_u16_to_u64, widen_u32_to_u64, widen_u8_to_u64, zigzag_decode_batch, ROW_FOLD_EVENTS,
};

use std::sync::OnceLock;

/// Which compiled flavour of the kernels to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Baseline-target-feature build of the kernel bodies.
    Scalar,
    /// AVX2 build of the same bodies (falls back to scalar per call if
    /// the hardware lacks AVX2 — see the crate-level soundness note).
    Wide,
}

impl Dispatch {
    /// The process-wide dispatch decision, made once on first use:
    /// `TDP_SIMD` (`scalar` / `wide`) overrides, otherwise AVX2
    /// detection decides.
    pub fn active() -> Dispatch {
        static ACTIVE: OnceLock<Dispatch> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            Dispatch::from_env(std::env::var("TDP_SIMD").ok().as_deref(), wide_available())
        })
    }

    /// Pure dispatch policy: `var` is the `TDP_SIMD` value (if set),
    /// `wide_available` the hardware verdict. Separated from
    /// [`Dispatch::active`] so tests can exercise every combination
    /// without touching process environment or the cached decision.
    ///
    /// Unrecognised values fall through to auto-detection, and `wide`
    /// without hardware support degrades to [`Dispatch::Scalar`].
    pub fn from_env(var: Option<&str>, wide_available: bool) -> Dispatch {
        match var {
            Some("scalar") => Dispatch::Scalar,
            Some("wide") => {
                if wide_available {
                    Dispatch::Wide
                } else {
                    Dispatch::Scalar
                }
            }
            _ => {
                if wide_available {
                    Dispatch::Wide
                } else {
                    Dispatch::Scalar
                }
            }
        }
    }

    /// Stable lowercase name, for benchmark reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            Dispatch::Scalar => "scalar",
            Dispatch::Wide => "wide",
        }
    }
}

/// Whether this machine can run the wide (AVX2) kernel flavour.
///
/// The detection result is cached by the standard library, so kernels
/// may call this per invocation without measurable cost.
pub fn wide_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_env_policy_covers_every_combination() {
        use Dispatch::{Scalar, Wide};
        assert_eq!(Dispatch::from_env(Some("scalar"), true), Scalar);
        assert_eq!(Dispatch::from_env(Some("scalar"), false), Scalar);
        assert_eq!(Dispatch::from_env(Some("wide"), true), Wide);
        // Forced wide without hardware support degrades, not crashes.
        assert_eq!(Dispatch::from_env(Some("wide"), false), Scalar);
        assert_eq!(Dispatch::from_env(None, true), Wide);
        assert_eq!(Dispatch::from_env(None, false), Scalar);
        // Unrecognised values fall back to auto-detection.
        assert_eq!(Dispatch::from_env(Some("avx512"), true), Wide);
        assert_eq!(Dispatch::from_env(Some(""), false), Scalar);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Dispatch::Scalar.label(), "scalar");
        assert_eq!(Dispatch::Wide.label(), "wide");
    }

    #[test]
    fn active_respects_process_environment() {
        // `active` caches process-wide; just pin that it agrees with
        // the pure policy applied to the live environment.
        let expect =
            Dispatch::from_env(std::env::var("TDP_SIMD").ok().as_deref(), wide_available());
        assert_eq!(Dispatch::active(), expect);
        assert_eq!(Dispatch::active(), expect, "decision must be stable");
    }
}
