//! Scalar ↔ wide dispatch equivalence — the crate's central contract,
//! property-tested over adversarial batches.
//!
//! Two different strengths of claim, matching the crate docs:
//!
//! * **Elementwise kernels** (`fill`, `axpy`, `quadratic`,
//!   `quadratic_acc`, `clamp_predictions`, `add_assign`) are
//!   **bit-identical** across dispatch modes — including NaN, ±inf,
//!   signed zero, and values exactly on the clamp ceiling. Both
//!   flavours compile the same expression sequence and Rust neither
//!   contracts nor reassociates floating point, so equality is asserted
//!   on raw bits, not within a tolerance.
//! * **Reductions** (`dot`, `sum`) use a fixed four-accumulator
//!   association written out in the shared kernel body, so they too are
//!   bit-identical *across dispatch modes*. Against a naive sequential
//!   sum they are reassociated; on cancellation-free inputs each of the
//!   four partial sums rounds independently, so the documented bound is
//!   a handful of ulp — asserted here as `n · ε` relative error, the
//!   standard forward bound either association satisfies.
//!
//! A last test forces `Dispatch::Wide` through the kernels directly and
//! pins the fallback policy, so the scalar degradation path is
//! exercised even when CI machines all have AVX2.

use proptest::prelude::*;
use tdp_simd::{
    add_assign, axpy, clamp_predictions, delta_unfold, dot, fill, quadratic, quadratic_acc, sum,
    wide_available, widen_u16_to_u64, widen_u32_to_u64, widen_u8_to_u64, zigzag_decode_batch,
    Dispatch,
};

const BOTH: [Dispatch; 2] = [Dispatch::Scalar, Dispatch::Wide];

/// Expands class-tagged draws into a column that mixes ordinary values
/// with every special-case row the estimator can meet: NaN (a machine
/// that never sent a counter), ±inf (overflowed rate division), signed
/// zeros, and values sitting exactly on / next to the clamp ceiling.
fn build_column(picks: &[(u8, f64)], ceil: f64) -> Vec<f64> {
    picks
        .iter()
        .map(|&(class, raw)| match class {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            5 => ceil,                       // exactly at the clamp boundary
            6 => ceil + ceil * f64::EPSILON, // first value past it
            _ => raw,
        })
        .collect()
}

proptest! {
    /// Every elementwise kernel, both dispatch flavours, raw-bit
    /// equality — on batches salted with NaN/inf/clamp-boundary rows.
    #[test]
    fn elementwise_kernels_bit_identical(
        picks in proptest::collection::vec((0u8..8, any::<f64>()), 0..64),
        dc in 10.0f64..40.0,
        lin in -2.0f64..2.0,
        quad in -1e-3f64..1e-3,
    ) {
        let peak1 = 9.5;
        let ncpus = 4.0;
        let ceil = dc + peak1 * ncpus;
        let x = build_column(&picks, ceil);
        let x_sq: Vec<f64> = x.iter().map(|v| v * v).collect();
        let n_col = vec![ncpus; x.len()];

        // One pass per flavour through the full kernel sequence the
        // estimator runs, so equivalence is checked on *composed*
        // state, not just one call.
        let mut outs: Vec<(Vec<f64>, u64)> = Vec::new();
        for d in BOTH {
            let mut out = vec![0.0f64; x.len()];
            fill(d, &mut out, dc);
            axpy(d, &mut out, lin, &x);
            quadratic(d, &mut out, dc, lin, quad, &x, &x_sq);
            quadratic_acc(d, &mut out, lin, quad, &x, &x_sq);
            add_assign(d, &mut out, &x);
            let clamped = clamp_predictions(d, &mut out, dc, peak1, &n_col);
            outs.push((out, clamped));
        }
        let (scalar, wide) = (&outs[0], &outs[1]);
        prop_assert_eq!(scalar.1, wide.1, "clamp counts diverged");
        for (i, (s, w)) in scalar.0.iter().zip(&wide.0).enumerate() {
            prop_assert_eq!(s.to_bits(), w.to_bits(), "lane {} diverged", i);
        }
    }

    /// Reductions: bit-identical across dispatch flavours, and within
    /// the documented forward-error bound of a naive sequential sum on
    /// cancellation-free inputs (`n · ε` relative — "a few ulp" for the
    /// small `n` the estimator uses).
    #[test]
    fn reductions_bit_identical_and_ulp_bounded(
        xs in proptest::collection::vec(0.0f64..1e9, 0..96),
        ys in proptest::collection::vec(0.0f64..1e3, 0..96),
    ) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);

        let dot_scalar = dot(Dispatch::Scalar, xs, ys);
        let dot_wide = dot(Dispatch::Wide, xs, ys);
        prop_assert_eq!(dot_scalar.to_bits(), dot_wide.to_bits(), "dot diverged");
        let sum_scalar = sum(Dispatch::Scalar, xs);
        let sum_wide = sum(Dispatch::Wide, xs);
        prop_assert_eq!(sum_scalar.to_bits(), sum_wide.to_bits(), "sum diverged");

        let dot_seq: f64 = xs.iter().zip(ys).map(|(&a, &b)| a * b).sum();
        let sum_seq: f64 = xs.iter().sum();
        let bound = |reference: f64| n as f64 * f64::EPSILON * reference.abs();
        prop_assert!(
            (dot_scalar - dot_seq).abs() <= bound(dot_seq),
            "dot drifted past the documented reassociation bound"
        );
        prop_assert!(
            (sum_scalar - sum_seq).abs() <= bound(sum_seq),
            "sum drifted past the documented reassociation bound"
        );
    }

    /// The integer kernels behind the column-planar wire decode —
    /// widen, zigzag, delta unfold — are pure bit manipulation, so the
    /// claim is the strong one: exact equality across dispatch
    /// flavours, and against a straight-line reference, for arbitrary
    /// byte streams and plane shapes.
    #[test]
    fn planar_integer_kernels_bit_identical(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        words in proptest::collection::vec(any::<u64>(), 1..64),
        planes in 1usize..6,
    ) {
        // Widen: every lane width, both flavours, vs a scalar rebuild.
        for (width, chop) in [(1usize, 0usize), (2, bytes.len() % 2), (4, bytes.len() % 4)] {
            let src = &bytes[..bytes.len() - chop];
            let lanes = src.len() / width;
            let expect: Vec<u64> = src
                .chunks_exact(width)
                .map(|c| {
                    let mut le = [0u8; 8];
                    le[..width].copy_from_slice(c);
                    u64::from_le_bytes(le)
                })
                .collect();
            for d in BOTH {
                let mut dst = vec![0u64; lanes];
                match width {
                    1 => widen_u8_to_u64(d, src, &mut dst),
                    2 => widen_u16_to_u64(d, &src[..lanes * 2], &mut dst),
                    _ => widen_u32_to_u64(d, &src[..lanes * 4], &mut dst),
                }
                prop_assert_eq!(&dst, &expect, "widen u{} diverged", width * 8);
            }
        }

        // Zigzag: both flavours equal the signed identity.
        let zz_expect: Vec<u64> = words
            .iter()
            .map(|&v| ((v >> 1) as i64 ^ -((v & 1) as i64)) as u64)
            .collect();
        for d in BOTH {
            let mut vals = words.clone();
            zigzag_decode_batch(d, &mut vals);
            prop_assert_eq!(&vals, &zz_expect, "zigzag diverged");
        }

        // Delta unfold: wrapping prefix sums per plane, both flavours.
        // (`stride` can be 0 when there are more planes than words —
        // that is the legal empty-deltas no-op, skipped here.)
        let stride = words.len() / planes;
        if stride > 0 {
            let bases: Vec<u64> = (0..planes).map(|p| words[p].rotate_left(17)).collect();
            let deltas = &words[..stride * planes];
            let mut expect = deltas.to_vec();
            for (p, chunk) in expect.chunks_mut(stride).enumerate() {
                let mut acc = bases[p];
                for v in chunk {
                    acc = acc.wrapping_add(*v);
                    *v = acc;
                }
            }
            for d in BOTH {
                let mut vals = deltas.to_vec();
                delta_unfold(d, &bases, &mut vals);
                prop_assert_eq!(&vals, &expect, "delta unfold diverged");
            }
        }
    }
}

/// Forcing the scalar flavour must be possible regardless of hardware
/// (the CI matrix runs the whole suite under `TDP_SIMD=scalar` and
/// `TDP_SIMD=wide`), and a `Wide` request degrades — not crashes — when
/// AVX2 is absent. The kernel calls below take the in-kernel fallback
/// branch on non-AVX2 machines and the AVX2 branch otherwise; the
/// result contract is the same either way.
#[test]
fn forced_dispatch_and_fallback_policy() {
    assert_eq!(Dispatch::from_env(Some("scalar"), true), Dispatch::Scalar);
    assert_eq!(Dispatch::from_env(Some("scalar"), false), Dispatch::Scalar);
    assert_eq!(
        Dispatch::from_env(Some("wide"), false),
        Dispatch::Scalar,
        "wide without hardware support must degrade to scalar"
    );

    let x: Vec<f64> = (0..19).map(|i| i as f64 * 0.75 - 4.0).collect();
    let mut forced = vec![1.0; x.len()];
    let mut baseline = forced.clone();
    // Dispatch::Wide on any hardware: AVX2 flavour if available,
    // soundly degraded scalar flavour if not — never UB, same bits.
    axpy(Dispatch::Wide, &mut forced, 2.5, &x);
    axpy(Dispatch::Scalar, &mut baseline, 2.5, &x);
    assert_eq!(forced, baseline);
    assert_eq!(
        dot(Dispatch::Wide, &x, &x).to_bits(),
        dot(Dispatch::Scalar, &x, &x).to_bits()
    );
    // On this container the hardware verdict also decides `active()`
    // when TDP_SIMD is unset; pin that the two agree.
    let auto = Dispatch::from_env(None, wide_available());
    assert_eq!(
        auto,
        if wide_available() {
            Dispatch::Wide
        } else {
            Dispatch::Scalar
        }
    );
}
