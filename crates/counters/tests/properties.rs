//! Property-based tests for counter-bank and sampling invariants.

use proptest::prelude::*;
use tdp_counters::{
    CounterBank, CpuId, InterruptAccounting, InterruptSource, PerfEvent, SamplerConfig,
    SamplingDriver,
};

fn arb_event() -> impl Strategy<Value = PerfEvent> {
    (0..PerfEvent::count()).prop_map(|i| PerfEvent::ALL[i])
}

proptest! {
    /// A bank's read-out equals the sum of everything added since the
    /// last clear, for arbitrary add sequences.
    #[test]
    fn bank_totals_are_exact_sums(
        adds in prop::collection::vec((arb_event(), 0u64..1_000_000), 0..100),
    ) {
        let mut bank = CounterBank::new(CpuId::new(0));
        bank.program_all_for_exploration();
        let mut expected = vec![0u64; PerfEvent::count()];
        for &(e, n) in &adds {
            bank.add(e, n);
            expected[e.index()] += n;
        }
        let sample = bank.read_and_clear(0);
        for &e in PerfEvent::ALL {
            prop_assert_eq!(sample.count(e), Some(expected[e.index()]));
        }
        // Second read is all zeros.
        let empty = bank.read_and_clear(1);
        for &e in PerfEvent::ALL {
            prop_assert_eq!(empty.count(e), Some(0));
        }
    }

    /// The sampling driver fires exactly once per period no matter how
    /// finely time is polled.
    #[test]
    fn driver_fires_once_per_period(
        period in 10u64..2_000,
        step in 1u64..50,
        horizon_periods in 1u64..20,
    ) {
        let mut d = SamplingDriver::new(SamplerConfig {
            period_ms: period,
            max_jitter_ms: 0,
        });
        let horizon = period * horizon_periods;
        let mut fires = 0u64;
        let mut t = 0;
        while t <= horizon + period {
            if d.poll(t).is_some() {
                fires += 1;
            }
            t += step;
        }
        // Periods re-anchor at the actual (polled) fire time, so each
        // effective period is in [period, period + step).
        let min_fires = (horizon + period) / (period + step);
        prop_assert!(
            fires >= min_fires && fires <= horizon_periods + 2,
            "{fires} fires over {horizon_periods} periods (step {step})"
        );
    }

    /// Interrupt accounting: cumulative counts equal the sum of all
    /// window deltas, per CPU and source.
    #[test]
    fn interrupt_deltas_partition_cumulative(
        events in prop::collection::vec((0u8..4, 0u8..4), 0..200),
        snapshot_every in 1usize..20,
    ) {
        let mut acc = InterruptAccounting::new(4);
        let mut delta_total = 0u64;
        for (i, &(cpu, kind)) in events.iter().enumerate() {
            let source = match kind {
                0 => InterruptSource::Timer,
                1 => InterruptSource::Disk(0),
                2 => InterruptSource::Nic,
                _ => InterruptSource::Other,
            };
            acc.record(cpu, source);
            if i % snapshot_every == 0 {
                delta_total += acc.snapshot_delta().total();
            }
        }
        delta_total += acc.snapshot_delta().total();
        prop_assert_eq!(delta_total, events.len() as u64);
        let cumulative: u64 = (0..4u8)
            .map(|c| {
                acc.cumulative(c, InterruptSource::Timer)
                    + acc.cumulative(c, InterruptSource::Disk(0))
                    + acc.cumulative(c, InterruptSource::Nic)
                    + acc.cumulative(c, InterruptSource::Other)
            })
            .sum();
        prop_assert_eq!(cumulative, events.len() as u64);
    }
}
