//! Synchronisation pulses for aligning counter samples with externally
//! acquired power data.
//!
//! The paper's target system sends a single byte to a USB serial port at
//! every counter sampling; the data-acquisition workstation records the
//! serial transmit line alongside the power channels, and the two streams
//! are matched offline (§3.1.2). [`SyncRecorder`] plays the role of that
//! serial line as seen by the acquisition side.

use serde::{Deserialize, Serialize};

/// A synchronisation pulse: "counter sample `seq` was taken at `time_ms`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncPulse {
    /// Sample sequence number encoded in the pulse signature.
    pub seq: u64,
    /// Simulated time the pulse was observed, in milliseconds.
    pub time_ms: u64,
}

/// Records the pulses observed on the acquisition side and answers
/// alignment queries.
///
/// # Example
///
/// ```
/// use tdp_counters::SyncRecorder;
///
/// let mut rec = SyncRecorder::new();
/// rec.pulse(0, 1000);
/// rec.pulse(1, 2003); // sampling jitter
///
/// // Which window does acquisition time 1500 ms belong to?
/// assert_eq!(rec.window_of(1500), Some(0));
/// assert_eq!(rec.window_of(2500), Some(1));
/// assert_eq!(rec.window_of(500), None, "before the first pulse");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncRecorder {
    pulses: Vec<SyncPulse>,
}

impl SyncRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a pulse. Pulses must arrive in increasing time order.
    ///
    /// # Panics
    ///
    /// Panics if `time_ms` precedes the previous pulse (the serial line
    /// cannot go backwards in time).
    pub fn pulse(&mut self, seq: u64, time_ms: u64) {
        if let Some(last) = self.pulses.last() {
            assert!(
                time_ms >= last.time_ms,
                "sync pulses must be monotonically ordered"
            );
        }
        self.pulses.push(SyncPulse { seq, time_ms });
    }

    /// All recorded pulses in order.
    pub fn pulses(&self) -> &[SyncPulse] {
        &self.pulses
    }

    /// The sequence number of the sampling window that contains
    /// acquisition time `time_ms`: the window opened by the latest pulse
    /// at or before `time_ms`.
    pub fn window_of(&self, time_ms: u64) -> Option<u64> {
        match self.pulses.binary_search_by_key(&time_ms, |p| p.time_ms) {
            Ok(i) => Some(self.pulses[i].seq),
            Err(0) => None,
            Err(i) => Some(self.pulses[i - 1].seq),
        }
    }

    /// The `[start, end)` time span of window `seq`, where `end` is the
    /// next pulse's time or `None` for the still-open last window.
    pub fn span_of(&self, seq: u64) -> Option<(u64, Option<u64>)> {
        let i = self.pulses.iter().position(|p| p.seq == seq)?;
        let start = self.pulses[i].time_ms;
        let end = self.pulses.get(i + 1).map(|p| p.time_ms);
        Some((start, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "monotonically")]
    fn pulses_must_be_ordered() {
        let mut rec = SyncRecorder::new();
        rec.pulse(0, 100);
        rec.pulse(1, 50);
    }

    #[test]
    fn exact_pulse_time_belongs_to_its_own_window() {
        let mut rec = SyncRecorder::new();
        rec.pulse(7, 1000);
        assert_eq!(rec.window_of(1000), Some(7));
    }

    #[test]
    fn span_of_last_window_is_open() {
        let mut rec = SyncRecorder::new();
        rec.pulse(0, 1000);
        rec.pulse(1, 2000);
        assert_eq!(rec.span_of(0), Some((1000, Some(2000))));
        assert_eq!(rec.span_of(1), Some((2000, None)));
        assert_eq!(rec.span_of(9), None);
    }
}
