//! The five measurable power subsystems of the target server.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A power subsystem of the target server (§3.1.1 of the paper).
///
/// The division is the one the system designer's power-domain layout made
/// measurable: four Pentium 4 Xeons behind one domain, the processor
/// interface chips, the memory controller plus DRAM, the PCI buses and
/// devices, and two SCSI disks.
///
/// # Example
///
/// ```
/// use tdp_counters::Subsystem;
///
/// let total: String = Subsystem::ALL
///     .iter()
///     .map(|s| s.to_string())
///     .collect::<Vec<_>>()
///     .join(",");
/// assert_eq!(total, "cpu,chipset,memory,io,disk");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Subsystem {
    /// The four-processor CPU subsystem.
    Cpu,
    /// Processor-interface chips not included in other subsystems.
    Chipset,
    /// Memory controller and DRAM.
    Memory,
    /// PCI buses and all devices attached to them.
    Io,
    /// The two SCSI disks.
    Disk,
}

impl Subsystem {
    /// All five subsystems in the paper's reporting order
    /// (CPU, chipset, memory, I/O, disk — the column order of Table 1).
    pub const ALL: &'static [Subsystem] = &[
        Subsystem::Cpu,
        Subsystem::Chipset,
        Subsystem::Memory,
        Subsystem::Io,
        Subsystem::Disk,
    ];

    /// Dense index usable as an array offset.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Subsystem::Cpu => 0,
            Subsystem::Chipset => 1,
            Subsystem::Memory => 2,
            Subsystem::Io => 3,
            Subsystem::Disk => 4,
        }
    }

    /// Number of subsystems.
    #[inline]
    pub fn count() -> usize {
        Self::ALL.len()
    }

    /// Lowercase stable name.
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Cpu => "cpu",
            Subsystem::Chipset => "chipset",
            Subsystem::Memory => "memory",
            Subsystem::Io => "io",
            Subsystem::Disk => "disk",
        }
    }
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, &s) in Subsystem::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &s in Subsystem::ALL {
            assert!(seen.insert(s.name()));
        }
    }
}
