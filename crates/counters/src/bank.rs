//! Per-CPU hardware counter banks.

use crate::event::{EventSet, PerfEvent};
use crate::sampler::{CounterSample, CpuId};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Number of simultaneously programmable hardware counters.
///
/// The Pentium 4 PMU exposes 18 counters (Sprunt, *Pentium 4 Performance
/// Monitoring Features*, IEEE Micro 2002); OS-provenance events (interrupt
/// sources) do not occupy a hardware slot.
pub const MAX_HARDWARE_COUNTERS: usize = 18;

/// Error returned when programming a [`CounterBank`] with an invalid event
/// selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// More PMU events requested than hardware counters exist.
    TooManyEvents {
        /// Number of PMU-provenance events requested.
        requested: usize,
        /// Hardware limit ([`MAX_HARDWARE_COUNTERS`]).
        available: usize,
    },
    /// The same event was requested twice.
    DuplicateEvent(PerfEvent),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::TooManyEvents {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} PMU events but only {available} hardware counters exist"
            ),
            ProgramError::DuplicateEvent(e) => {
                write!(f, "event {e} requested more than once")
            }
        }
    }
}

impl Error for ProgramError {}

/// A per-CPU bank of event counters with clear-on-read semantics.
///
/// The bank counts every defined [`PerfEvent`] internally, but only events
/// that have been *programmed* are visible through [`read_and_clear`] —
/// mirroring the fact that a real PMU only counts what its event-select
/// registers are configured for. The simulated machine calls [`add`]
/// unconditionally; what escapes into a [`CounterSample`] is gated here.
///
/// [`read_and_clear`]: CounterBank::read_and_clear
/// [`add`]: CounterBank::add
///
/// # Example
///
/// ```
/// use tdp_counters::{CounterBank, CpuId, PerfEvent};
///
/// let mut bank = CounterBank::new(CpuId::new(2));
/// bank.program(&[PerfEvent::TlbMisses])?;
/// bank.add(PerfEvent::TlbMisses, 10);
/// bank.add(PerfEvent::Cycles, 999); // counted but not programmed
///
/// let s = bank.read_and_clear(0);
/// assert_eq!(s.count(PerfEvent::TlbMisses), Some(10));
/// assert_eq!(s.count(PerfEvent::Cycles), None, "not programmed");
/// # Ok::<(), tdp_counters::ProgramError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterBank {
    cpu: CpuId,
    programmed: EventSet,
    counts: Vec<u64>,
}

impl CounterBank {
    /// Creates a bank for `cpu` with no events programmed.
    pub fn new(cpu: CpuId) -> Self {
        Self {
            cpu,
            programmed: EventSet::new(),
            counts: vec![0; PerfEvent::count()],
        }
    }

    /// Creates a bank pre-programmed with the paper's trickle-down event
    /// set ([`PerfEvent::TRICKLE_DOWN_SET`]).
    pub fn with_trickle_down_set(cpu: CpuId) -> Self {
        let mut bank = Self::new(cpu);
        bank.program(PerfEvent::TRICKLE_DOWN_SET)
            .expect("trickle-down set fits the hardware");
        bank
    }

    /// The CPU this bank belongs to.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Programs the bank to expose exactly `events`.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::TooManyEvents`] if more PMU events are
    /// requested than [`MAX_HARDWARE_COUNTERS`], and
    /// [`ProgramError::DuplicateEvent`] if an event appears twice.
    pub fn program(&mut self, events: &[PerfEvent]) -> Result<(), ProgramError> {
        let mut set = EventSet::new();
        for &e in events {
            if !set.insert(e) {
                return Err(ProgramError::DuplicateEvent(e));
            }
        }
        let pmu_slots = set
            .iter()
            .filter(|e| e.provenance() == crate::EventProvenance::Pmu)
            .count();
        if pmu_slots > MAX_HARDWARE_COUNTERS {
            return Err(ProgramError::TooManyEvents {
                requested: pmu_slots,
                available: MAX_HARDWARE_COUNTERS,
            });
        }
        self.programmed = set;
        Ok(())
    }

    /// Programs the bank to expose every defined event.
    ///
    /// This over-subscribes a real PMU (it would need multiplexing) but is
    /// convenient for model-selection experiments where all candidates are
    /// observed; a note to that effect belongs in any methodology that uses
    /// it.
    pub fn program_all_for_exploration(&mut self) {
        self.programmed = EventSet::from_events(PerfEvent::ALL);
    }

    /// The currently programmed event set.
    pub fn programmed(&self) -> EventSet {
        self.programmed
    }

    /// Adds `delta` occurrences of `event`.
    #[inline]
    pub fn add(&mut self, event: PerfEvent, delta: u64) {
        self.counts[event.index()] = self.counts[event.index()].wrapping_add(delta);
    }

    /// Current raw count of `event` if it is programmed, without clearing.
    pub fn peek(&self, event: PerfEvent) -> Option<u64> {
        self.programmed
            .contains(event)
            .then(|| self.counts[event.index()])
    }

    /// Reads all programmed counters into a [`CounterSample`] tagged with
    /// `seq`, then clears **all** counters (programmed or not), matching
    /// the paper's record-total-then-clear sampling discipline (§3.1.3).
    pub fn read_and_clear(&mut self, seq: u64) -> CounterSample {
        // The sample's count store is inline up to the hardware limit,
        // so an empty seed vector never allocates.
        let mut sample = CounterSample::new(self.cpu, seq, Vec::new());
        self.read_and_clear_into(seq, &mut sample);
        sample
    }

    /// Like [`read_and_clear`](Self::read_and_clear) but refilling a
    /// caller-owned sample in place, reusing its count store.
    pub fn read_and_clear_into(&mut self, seq: u64, out: &mut CounterSample) {
        out.reset_for(self.cpu, seq);
        for e in self.programmed.iter() {
            out.push_count((e, self.counts[e.index()]));
        }
        for c in &mut self.counts {
            *c = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprogrammed_events_are_invisible() {
        let mut bank = CounterBank::new(CpuId::new(0));
        bank.program(&[PerfEvent::Cycles]).unwrap();
        bank.add(PerfEvent::HaltedCycles, 5);
        let s = bank.read_and_clear(0);
        assert_eq!(s.count(PerfEvent::HaltedCycles), None);
    }

    #[test]
    fn read_clears_all_counters_even_unprogrammed() {
        let mut bank = CounterBank::new(CpuId::new(0));
        bank.program(&[PerfEvent::Cycles]).unwrap();
        bank.add(PerfEvent::HaltedCycles, 5);
        bank.add(PerfEvent::Cycles, 7);
        let _ = bank.read_and_clear(0);
        bank.program(&[PerfEvent::HaltedCycles]).unwrap();
        let s = bank.read_and_clear(1);
        assert_eq!(
            s.count(PerfEvent::HaltedCycles),
            Some(0),
            "clear-on-read wipes unprogrammed counters too"
        );
    }

    #[test]
    fn duplicate_program_rejected() {
        let mut bank = CounterBank::new(CpuId::new(0));
        let err = bank
            .program(&[PerfEvent::Cycles, PerfEvent::Cycles])
            .unwrap_err();
        assert_eq!(err, ProgramError::DuplicateEvent(PerfEvent::Cycles));
    }

    #[test]
    fn os_events_do_not_consume_hardware_slots() {
        let mut bank = CounterBank::new(CpuId::new(0));
        // 14 PMU events + 4 OS events = 18 entries, but only 14 PMU slots.
        bank.program(PerfEvent::ALL)
            .expect("full event list fits because interrupt events are OS-side");
    }

    #[test]
    fn counts_saturate_by_wrapping_not_panicking() {
        let mut bank = CounterBank::new(CpuId::new(0));
        bank.program(&[PerfEvent::Cycles]).unwrap();
        bank.add(PerfEvent::Cycles, u64::MAX);
        bank.add(PerfEvent::Cycles, 2);
        assert_eq!(bank.peek(PerfEvent::Cycles), Some(1));
    }

    #[test]
    fn trickle_down_constructor_programs_expected_set() {
        let bank = CounterBank::with_trickle_down_set(CpuId::new(1));
        for &e in PerfEvent::TRICKLE_DOWN_SET {
            assert!(bank.programmed().contains(e));
        }
        assert_eq!(bank.programmed().len(), PerfEvent::TRICKLE_DOWN_SET.len());
    }

    #[test]
    fn display_of_program_error_is_nonempty() {
        let e = ProgramError::TooManyEvents {
            requested: 20,
            available: 18,
        };
        assert!(!e.to_string().is_empty());
    }
}
