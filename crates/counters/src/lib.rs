//! Performance-event definitions, per-CPU counter banks, a perfctr-style
//! sampling driver and operating-system interrupt accounting.
//!
//! This crate is the shared vocabulary of the trickledown workspace: the
//! simulated machine ([`tdp-simsys`]) *produces* event counts into
//! [`CounterBank`]s, and the power-model library ([`trickledown`])
//! *consumes* [`SampleSet`]s read out of those banks. Nothing in this crate
//! knows anything about power — that separation mirrors the paper's setup,
//! where the Pentium 4's counters are oblivious to the sense resistors
//! attached to the power rails.
//!
//! The design follows the measurement methodology of Bircher & John,
//! *Complete System Power Estimation: A Trickle-Down Approach Based on
//! Performance Events* (ISPASS 2007), §3.1.3 and §3.3:
//!
//! * counters are sampled **once per second** by the target itself, with a
//!   little jitter from cache effects and interrupt latency
//!   ([`SamplingDriver`]);
//! * the total count of each event over the window is recorded and the
//!   counters are **cleared** ([`CounterBank::read_and_clear`]);
//! * a **synchronisation pulse** is emitted at each sampling so that
//!   power-measurement records taken by separate acquisition hardware can be
//!   aligned offline ([`SyncPulse`]);
//! * interrupt *sources* are not a PMU event on the Pentium 4, so they are
//!   obtained from the operating system's per-vector accounting
//!   ([`InterruptAccounting`], the `/proc/interrupts` emulation).
//!
//! # Example
//!
//! ```
//! use tdp_counters::{CounterBank, CpuId, PerfEvent};
//!
//! let mut bank = CounterBank::new(CpuId::new(0));
//! bank.program(&[PerfEvent::Cycles, PerfEvent::FetchedUops])?;
//! bank.add(PerfEvent::Cycles, 2_000_000_000);
//! bank.add(PerfEvent::FetchedUops, 1_400_000_000);
//!
//! let sample = bank.read_and_clear(1);
//! assert_eq!(sample.count(PerfEvent::Cycles), Some(2_000_000_000));
//! assert_eq!(bank.peek(PerfEvent::Cycles), Some(0));
//! # Ok::<(), tdp_counters::ProgramError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod event;
mod interrupts;
mod multiplex;
mod sampler;
mod subsystem;
mod sync;

pub use bank::{CounterBank, ProgramError, MAX_HARDWARE_COUNTERS};
pub use event::{layout_hash, layout_hash_indices, EventProvenance, EventSet, PerfEvent};
pub use interrupts::{InterruptAccounting, InterruptSnapshot, InterruptSource, InterruptVector};
pub use multiplex::{MultiplexSchedule, MultiplexedSample, MultiplexedSampler};
pub use sampler::{CounterSample, CpuId, SampleSet, SamplerConfig, SamplingDriver};
pub use subsystem::Subsystem;
pub use sync::{SyncPulse, SyncRecorder};
