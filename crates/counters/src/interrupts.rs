//! Operating-system interrupt-vector accounting (`/proc/interrupts`
//! emulation).
//!
//! Interrupt vector numbers are delivered to the CPU but are not a PMU
//! event on the Pentium 4, so the paper "simulate[s] the presence of
//! interrupt information in the processor by obtaining it from the
//! operating system" via `/proc/interrupts` (§3.3 "Interrupts"). This
//! module is that mechanism.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An interrupt vector number (the unique ID the interrupt controller
/// sends to the processor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InterruptVector(pub u8);

impl fmt::Display for InterruptVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:02x}", self.0)
    }
}

/// The device class behind an interrupt vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterruptSource {
    /// Periodic OS scheduling timer (local APIC timer).
    Timer,
    /// A disk controller channel, identified by disk index.
    Disk(u8),
    /// The network interface controller.
    Nic,
    /// Anything else (spurious, IPI, legacy devices).
    Other,
}

impl InterruptSource {
    /// The conventional vector assignment used by the simulated platform.
    pub fn vector(self) -> InterruptVector {
        InterruptVector(match self {
            InterruptSource::Timer => 0x20,
            InterruptSource::Disk(n) => 0x30 + n,
            InterruptSource::Nic => 0x40,
            InterruptSource::Other => 0xff,
        })
    }

    /// Classifies a vector back into a source.
    pub fn from_vector(v: InterruptVector) -> InterruptSource {
        match v.0 {
            0x20 => InterruptSource::Timer,
            n @ 0x30..=0x3f => InterruptSource::Disk(n - 0x30),
            0x40 => InterruptSource::Nic,
            _ => InterruptSource::Other,
        }
    }

    /// Human-readable device name, as it would appear in
    /// `/proc/interrupts`.
    pub fn device_name(self) -> String {
        match self {
            InterruptSource::Timer => "timer".to_owned(),
            InterruptSource::Disk(n) => format!("scsi{n}"),
            InterruptSource::Nic => "eth0".to_owned(),
            InterruptSource::Other => "other".to_owned(),
        }
    }
}

/// Per-CPU, per-source interrupt deltas over one sampling window.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterruptSnapshot {
    /// `(cpu index, source, count)` triples, sparse.
    pub counts: Vec<(u8, InterruptSource, u64)>,
}

impl InterruptSnapshot {
    /// Total interrupts across all CPUs and sources.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&(_, _, c)| c).sum()
    }

    /// Total interrupts from `source` across all CPUs.
    pub fn total_from(&self, source: InterruptSource) -> u64 {
        self.counts
            .iter()
            .filter(|&&(_, s, _)| s == source)
            .map(|&(_, _, c)| c)
            .sum()
    }

    /// Total disk interrupts (all disk channels) across all CPUs.
    pub fn total_disk(&self) -> u64 {
        self.counts
            .iter()
            .filter(|&&(_, s, _)| matches!(s, InterruptSource::Disk(_)))
            .map(|&(_, _, c)| c)
            .sum()
    }

    /// Interrupts serviced by CPU `cpu`, all sources.
    pub fn total_on_cpu(&self, cpu: u8) -> u64 {
        self.counts
            .iter()
            .filter(|&&(c, _, _)| c == cpu)
            .map(|&(_, _, c)| c)
            .sum()
    }
}

/// Cumulative interrupt accounting, as the OS kernel maintains it.
///
/// [`record`](InterruptAccounting::record) is called by the interrupt
/// controller on every delivery; [`snapshot_delta`](InterruptAccounting::snapshot_delta)
/// produces the per-window deltas used in samples, and
/// [`render_proc_interrupts`](InterruptAccounting::render_proc_interrupts)
/// renders the familiar text table.
///
/// # Example
///
/// ```
/// use tdp_counters::{InterruptAccounting, InterruptSource};
///
/// let mut acc = InterruptAccounting::new(2);
/// acc.record(0, InterruptSource::Timer);
/// acc.record(1, InterruptSource::Disk(0));
/// acc.record(1, InterruptSource::Disk(0));
///
/// let snap = acc.snapshot_delta();
/// assert_eq!(snap.total(), 3);
/// assert_eq!(snap.total_disk(), 2);
/// // Deltas reset after each snapshot:
/// assert_eq!(acc.snapshot_delta().total(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct InterruptAccounting {
    num_cpus: usize,
    /// cumulative[cpu][source-slot]
    cumulative: Vec<Vec<u64>>,
    window: Vec<Vec<u64>>,
}

/// Source slots tracked per CPU: timer, disks 0–3, NIC, other.
const SLOT_COUNT: usize = 7;

fn slot_of(source: InterruptSource) -> usize {
    match source {
        InterruptSource::Timer => 0,
        InterruptSource::Disk(n) => 1 + (n as usize).min(3),
        InterruptSource::Nic => 5,
        InterruptSource::Other => 6,
    }
}

fn source_of(slot: usize) -> InterruptSource {
    match slot {
        0 => InterruptSource::Timer,
        1..=4 => InterruptSource::Disk((slot - 1) as u8),
        5 => InterruptSource::Nic,
        _ => InterruptSource::Other,
    }
}

impl InterruptAccounting {
    /// Creates accounting for `num_cpus` CPUs.
    pub fn new(num_cpus: usize) -> Self {
        Self {
            num_cpus,
            cumulative: vec![vec![0; SLOT_COUNT]; num_cpus],
            window: vec![vec![0; SLOT_COUNT]; num_cpus],
        }
    }

    /// Records one interrupt delivered to `cpu` from `source`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn record(&mut self, cpu: u8, source: InterruptSource) {
        let slot = slot_of(source);
        self.cumulative[cpu as usize][slot] += 1;
        self.window[cpu as usize][slot] += 1;
    }

    /// Number of CPUs tracked.
    pub fn num_cpus(&self) -> usize {
        self.num_cpus
    }

    /// Cumulative count for `(cpu, source)` since boot.
    pub fn cumulative(&self, cpu: u8, source: InterruptSource) -> u64 {
        self.cumulative[cpu as usize][slot_of(source)]
    }

    /// Returns the per-window deltas and resets the window, analogous to
    /// diffing two `/proc/interrupts` reads.
    pub fn snapshot_delta(&mut self) -> InterruptSnapshot {
        let mut snap = InterruptSnapshot::default();
        self.snapshot_delta_into(&mut snap);
        snap
    }

    /// Like [`snapshot_delta`](Self::snapshot_delta) but filling a
    /// caller-owned snapshot, reusing its buffer.
    pub fn snapshot_delta_into(&mut self, out: &mut InterruptSnapshot) {
        out.counts.clear();
        for (cpu, row) in self.window.iter_mut().enumerate() {
            for (slot, c) in row.iter_mut().enumerate() {
                if *c > 0 {
                    out.counts.push((cpu as u8, source_of(slot), *c));
                    *c = 0;
                }
            }
        }
    }

    /// Renders the cumulative table in `/proc/interrupts` style.
    pub fn render_proc_interrupts(&self) -> String {
        let mut out = String::from("           ");
        for cpu in 0..self.num_cpus {
            out.push_str(&format!("{:>12}", format!("CPU{cpu}")));
        }
        out.push('\n');
        for slot in 0..SLOT_COUNT {
            let source = source_of(slot);
            let any: u64 = self.cumulative.iter().map(|row| row[slot]).sum();
            if any == 0 && !matches!(source, InterruptSource::Timer) {
                continue;
            }
            out.push_str(&format!("{:>6}:    ", source.vector()));
            for row in &self.cumulative {
                out.push_str(&format!("{:>12}", row[slot]));
            }
            out.push_str(&format!("   {}\n", source.device_name()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_roundtrip() {
        for s in [
            InterruptSource::Timer,
            InterruptSource::Disk(0),
            InterruptSource::Disk(1),
            InterruptSource::Nic,
            InterruptSource::Other,
        ] {
            assert_eq!(InterruptSource::from_vector(s.vector()), s);
        }
    }

    #[test]
    fn cumulative_survives_snapshot() {
        let mut acc = InterruptAccounting::new(1);
        acc.record(0, InterruptSource::Timer);
        let _ = acc.snapshot_delta();
        acc.record(0, InterruptSource::Timer);
        assert_eq!(acc.cumulative(0, InterruptSource::Timer), 2);
    }

    #[test]
    fn snapshot_filters_by_cpu_and_source() {
        let mut acc = InterruptAccounting::new(2);
        acc.record(0, InterruptSource::Disk(0));
        acc.record(1, InterruptSource::Disk(1));
        acc.record(1, InterruptSource::Nic);
        let snap = acc.snapshot_delta();
        assert_eq!(snap.total_disk(), 2);
        assert_eq!(snap.total_on_cpu(1), 2);
        assert_eq!(snap.total_from(InterruptSource::Nic), 1);
    }

    #[test]
    fn proc_interrupts_rendering_mentions_devices() {
        let mut acc = InterruptAccounting::new(4);
        acc.record(0, InterruptSource::Timer);
        acc.record(2, InterruptSource::Disk(0));
        let table = acc.render_proc_interrupts();
        assert!(table.contains("CPU3"));
        assert!(table.contains("timer"));
        assert!(table.contains("scsi0"));
        assert!(!table.contains("eth0"), "idle devices are omitted");
    }

    #[test]
    fn high_disk_indices_fold_into_last_slot() {
        let mut acc = InterruptAccounting::new(1);
        acc.record(0, InterruptSource::Disk(9));
        let snap = acc.snapshot_delta();
        assert_eq!(snap.total_disk(), 1);
    }
}
