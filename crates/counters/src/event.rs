//! The observable performance events of the simulated Pentium 4 Xeon.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A performance event observable at (or, for interrupt-source events,
/// attributable to) a single CPU.
///
/// The list reproduces the candidate events discussed in §3.3 of the paper.
/// Six of them end up being used by the final subsystem models; the rest are
/// kept so that model selection (`tdp-modeling`) has a realistic search
/// space and so the paper's *negative* results (e.g. L3 misses failing to
/// predict memory power under `mcf`, DMA failing to predict I/O power) can
/// be reproduced rather than merely asserted.
///
/// # Example
///
/// ```
/// use tdp_counters::{EventProvenance, PerfEvent};
///
/// assert_eq!(PerfEvent::Cycles.provenance(), EventProvenance::Pmu);
/// assert_eq!(PerfEvent::DiskInterrupts.provenance(), EventProvenance::Os);
/// assert!(PerfEvent::ALL.contains(&PerfEvent::FetchedUops));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PerfEvent {
    /// Unhalted clock cycles: core frequency × time. Combined with most
    /// other events to form per-cycle rates, correcting for sampling-period
    /// wobble (§3.3 "Cycles").
    Cycles,
    /// Cycles during which clock gating was active because the OS executed
    /// `HLT` (§3.3 "Halted Cycles"). Idle power drops from ~36 W to ~9 W.
    HaltedCycles,
    /// Micro-operations fetched, including wrong-path work (§3.3 "Fetched
    /// Uops"). Preferred over retired instructions because it tracks power,
    /// not progress.
    FetchedUops,
    /// Micro-operations retired. Kept as a deliberately *worse* candidate:
    /// it misses speculative activity.
    RetiredUops,
    /// Loads and stores missing the level-2 cache.
    L2Misses,
    /// Loads that missed the level-3 (last-level) cache (§3.3 "Level 3
    /// Cache Misses"). Input to the Equation-2 memory model.
    L3LoadMisses,
    /// All L3 misses including stores/RFOs; on a write-back hierarchy these
    /// do not map one-to-one onto memory transactions.
    L3TotalMisses,
    /// Instruction- and data-TLB misses (§3.3 "TLB Misses"); page-sized
    /// trickle-down reaching as far as the disk.
    TlbMisses,
    /// Transactions on the processor memory bus (FSB) that originated in
    /// *this* processor: demand fills, write-backs, prefetches, uncacheable
    /// accesses (§3.3 "Processor Memory Bus Transactions").
    BusTransactionsSelf,
    /// FSB transactions that did *not* originate in this processor: DMA
    /// and other-processor coherency traffic. The Pentium 4 cannot tell the
    /// two apart (§3.3 "DMA Accesses"), and neither can we.
    DmaOtherBusTransactions,
    /// All FSB transactions observed by this processor (self + DMA/other).
    /// Input to the Equation-3 memory model.
    BusTransactionsAll,
    /// FSB transactions initiated by the hardware prefetcher. Plotted in
    /// the paper's Figure 4 to diagnose the cache-miss model failure.
    PrefetchBusTransactions,
    /// Loads/stores to address ranges marked uncacheable — memory-mapped
    /// I/O configuration and handshaking (§3.3 "Uncacheable Accesses").
    UncacheableAccesses,
    /// All interrupts serviced by this CPU (OS-provided, §3.3
    /// "Interrupts").
    InterruptsTotal,
    /// Interrupts whose vector belongs to a disk controller (OS-provided).
    /// Input to the Equation-4 disk model.
    DiskInterrupts,
    /// Interrupts from the periodic OS timer (OS-provided).
    TimerInterrupts,
    /// Interrupts from the network interface (OS-provided).
    NicInterrupts,
    /// Branch mispredictions; drives speculative (wrong-path) activity.
    BranchMispredictions,
}

/// Where an event's count comes from.
///
/// The paper reads PMU events through the `perfctr` driver and interrupt
/// sources from `/proc/interrupts`; the distinction matters because OS
/// events cost a slow system call per read while PMU events are a handful
/// of register accesses (§2.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventProvenance {
    /// Counted by the on-chip performance-monitoring unit.
    Pmu,
    /// Maintained by the operating system (interrupt-vector accounting).
    Os,
}

impl PerfEvent {
    /// Every defined event, in declaration order.
    pub const ALL: &'static [PerfEvent] = &[
        PerfEvent::Cycles,
        PerfEvent::HaltedCycles,
        PerfEvent::FetchedUops,
        PerfEvent::RetiredUops,
        PerfEvent::L2Misses,
        PerfEvent::L3LoadMisses,
        PerfEvent::L3TotalMisses,
        PerfEvent::TlbMisses,
        PerfEvent::BusTransactionsSelf,
        PerfEvent::DmaOtherBusTransactions,
        PerfEvent::BusTransactionsAll,
        PerfEvent::PrefetchBusTransactions,
        PerfEvent::UncacheableAccesses,
        PerfEvent::InterruptsTotal,
        PerfEvent::DiskInterrupts,
        PerfEvent::TimerInterrupts,
        PerfEvent::NicInterrupts,
        PerfEvent::BranchMispredictions,
    ];

    /// The six events the paper's final models consume (§1, §3.3), plus
    /// `Cycles` which normalises the rest into per-cycle rates.
    pub const TRICKLE_DOWN_SET: &'static [PerfEvent] = &[
        PerfEvent::Cycles,
        PerfEvent::HaltedCycles,
        PerfEvent::FetchedUops,
        PerfEvent::BusTransactionsAll,
        PerfEvent::DmaOtherBusTransactions,
        PerfEvent::InterruptsTotal,
        PerfEvent::DiskInterrupts,
    ];

    /// Stable dense index of this event, usable as an array offset.
    #[inline]
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&e| e == self)
            .expect("every PerfEvent variant is listed in ALL")
    }

    /// Number of defined events.
    #[inline]
    pub fn count() -> usize {
        Self::ALL.len()
    }

    /// Whether the count comes from the PMU or from OS accounting.
    pub fn provenance(self) -> EventProvenance {
        match self {
            PerfEvent::InterruptsTotal
            | PerfEvent::DiskInterrupts
            | PerfEvent::TimerInterrupts
            | PerfEvent::NicInterrupts => EventProvenance::Os,
            _ => EventProvenance::Pmu,
        }
    }

    /// Short lowercase mnemonic, stable across versions (used in reports
    /// and serialized model descriptions).
    pub fn mnemonic(self) -> &'static str {
        match self {
            PerfEvent::Cycles => "cycles",
            PerfEvent::HaltedCycles => "halted_cycles",
            PerfEvent::FetchedUops => "fetched_uops",
            PerfEvent::RetiredUops => "retired_uops",
            PerfEvent::L2Misses => "l2_misses",
            PerfEvent::L3LoadMisses => "l3_load_misses",
            PerfEvent::L3TotalMisses => "l3_total_misses",
            PerfEvent::TlbMisses => "tlb_misses",
            PerfEvent::BusTransactionsSelf => "bus_txn_self",
            PerfEvent::DmaOtherBusTransactions => "bus_txn_dma_other",
            PerfEvent::BusTransactionsAll => "bus_txn_all",
            PerfEvent::PrefetchBusTransactions => "bus_txn_prefetch",
            PerfEvent::UncacheableAccesses => "uncacheable",
            PerfEvent::InterruptsTotal => "interrupts",
            PerfEvent::DiskInterrupts => "disk_interrupts",
            PerfEvent::TimerInterrupts => "timer_interrupts",
            PerfEvent::NicInterrupts => "nic_interrupts",
            PerfEvent::BranchMispredictions => "branch_mispredicts",
        }
    }
}

impl fmt::Display for PerfEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// 64-bit FNV-1a hash of an *ordered* event list, over each event's
/// stable [`PerfEvent::index`] plus the list length.
///
/// This is the layout identity used on the telemetry wire (`tdp-wire`):
/// two counter layouts hash equal iff they list the same events in the
/// same order, so a decoder can key its memoized column mapping on the
/// hash alone. The hash is stable across processes and architectures
/// (it depends only on declaration order, which `ALL` pins).
///
/// # Example
///
/// ```
/// use tdp_counters::{layout_hash, PerfEvent};
///
/// let a = [PerfEvent::Cycles, PerfEvent::FetchedUops];
/// let b = [PerfEvent::FetchedUops, PerfEvent::Cycles];
/// assert_ne!(layout_hash(&a), layout_hash(&b), "order matters");
/// assert_eq!(layout_hash(&a), layout_hash(&a.to_vec()));
/// ```
pub fn layout_hash(events: &[PerfEvent]) -> u64 {
    layout_hash_indices(events.iter().map(|e| e.index() as u64))
}

/// [`layout_hash`] over raw event *indices* instead of [`PerfEvent`]s.
///
/// This is the form a wire decoder uses to verify a layout frame: the
/// frame carries indices, some of which may be unknown to this build
/// (a newer producer), yet the hash must still be checkable.
pub fn layout_hash_indices(indices: impl IntoIterator<Item = u64>) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut len = 0u64;
    for i in indices {
        h = (h ^ i).wrapping_mul(FNV_PRIME);
        len += 1;
    }
    // Fold the length in so a truncated list never aliases its prefix
    // (FNV of a prefix is a valid intermediate state of the full list).
    (h ^ len).wrapping_mul(FNV_PRIME)
}

/// A set of [`PerfEvent`]s, represented as a bitmask for cheap copying.
///
/// # Example
///
/// ```
/// use tdp_counters::{EventSet, PerfEvent};
///
/// let mut set = EventSet::new();
/// set.insert(PerfEvent::Cycles);
/// set.insert(PerfEvent::FetchedUops);
/// assert!(set.contains(PerfEvent::Cycles));
/// assert!(!set.contains(PerfEvent::TlbMisses));
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EventSet(u32);

impl EventSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self(0)
    }

    /// Creates a set containing every event in `events`.
    pub fn from_events(events: &[PerfEvent]) -> Self {
        let mut s = Self::new();
        for &e in events {
            s.insert(e);
        }
        s
    }

    /// Adds `event`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, event: PerfEvent) -> bool {
        let bit = 1u32 << event.index();
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes `event`; returns `true` if it was present.
    pub fn remove(&mut self, event: PerfEvent) -> bool {
        let bit = 1u32 << event.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Whether `event` is in the set.
    pub fn contains(&self, event: PerfEvent) -> bool {
        self.0 & (1u32 << event.index()) != 0
    }

    /// Number of events in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over the members in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = PerfEvent> + '_ {
        PerfEvent::ALL.iter().copied().filter(|e| self.contains(*e))
    }

    /// [`layout_hash`] of this set's members in declaration order — the
    /// wire identity of a counter bank programmed from this set.
    pub fn layout_hash(&self) -> u64 {
        layout_hash_indices(self.iter().map(|e| e.index() as u64))
    }
}

impl FromIterator<PerfEvent> for EventSet {
    fn from_iter<I: IntoIterator<Item = PerfEvent>>(iter: I) -> Self {
        let mut s = Self::new();
        for e in iter {
            s.insert(e);
        }
        s
    }
}

impl Extend<PerfEvent> for EventSet {
    fn extend<I: IntoIterator<Item = PerfEvent>>(&mut self, iter: I) {
        for e in iter {
            self.insert(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_indices_are_dense_and_unique() {
        for (i, &e) in PerfEvent::ALL.iter().enumerate() {
            assert_eq!(e.index(), i, "index of {e} must match ALL position");
        }
    }

    #[test]
    fn all_fits_in_event_set_mask() {
        assert!(PerfEvent::count() <= 32, "EventSet uses a u32 bitmask");
    }

    #[test]
    fn trickle_down_set_is_subset_of_all() {
        for e in PerfEvent::TRICKLE_DOWN_SET {
            assert!(PerfEvent::ALL.contains(e));
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &e in PerfEvent::ALL {
            assert!(seen.insert(e.mnemonic()), "duplicate mnemonic {}", e);
        }
    }

    #[test]
    fn os_events_are_exactly_the_interrupt_events() {
        for &e in PerfEvent::ALL {
            let is_irq = matches!(
                e,
                PerfEvent::InterruptsTotal
                    | PerfEvent::DiskInterrupts
                    | PerfEvent::TimerInterrupts
                    | PerfEvent::NicInterrupts
            );
            assert_eq!(e.provenance() == EventProvenance::Os, is_irq);
        }
    }

    #[test]
    fn event_set_insert_remove_roundtrip() {
        let mut s = EventSet::new();
        assert!(s.is_empty());
        assert!(s.insert(PerfEvent::TlbMisses));
        assert!(!s.insert(PerfEvent::TlbMisses), "second insert is a no-op");
        assert_eq!(s.len(), 1);
        assert!(s.remove(PerfEvent::TlbMisses));
        assert!(!s.remove(PerfEvent::TlbMisses));
        assert!(s.is_empty());
    }

    #[test]
    fn event_set_iterates_in_declaration_order() {
        let s = EventSet::from_events(&[
            PerfEvent::TlbMisses,
            PerfEvent::Cycles,
            PerfEvent::DiskInterrupts,
        ]);
        let order: Vec<_> = s.iter().collect();
        assert_eq!(
            order,
            vec![
                PerfEvent::Cycles,
                PerfEvent::TlbMisses,
                PerfEvent::DiskInterrupts
            ]
        );
    }

    #[test]
    fn layout_hash_distinguishes_order_subset_and_extension() {
        let base = [
            PerfEvent::Cycles,
            PerfEvent::HaltedCycles,
            PerfEvent::FetchedUops,
        ];
        let swapped = [
            PerfEvent::HaltedCycles,
            PerfEvent::Cycles,
            PerfEvent::FetchedUops,
        ];
        let extended = [
            PerfEvent::Cycles,
            PerfEvent::HaltedCycles,
            PerfEvent::FetchedUops,
            PerfEvent::TlbMisses,
        ];
        assert_eq!(layout_hash(&base), layout_hash(&base));
        assert_ne!(layout_hash(&base), layout_hash(&swapped));
        assert_ne!(layout_hash(&base), layout_hash(&extended));
        assert_ne!(layout_hash(&base), layout_hash(&base[..2]));
        assert_ne!(layout_hash(&[]), layout_hash(&base));
    }

    #[test]
    fn event_set_layout_hash_matches_declaration_order_list() {
        let s = EventSet::from_events(&[
            PerfEvent::TlbMisses,
            PerfEvent::Cycles,
            PerfEvent::DiskInterrupts,
        ]);
        let ordered: Vec<PerfEvent> = s.iter().collect();
        assert_eq!(s.layout_hash(), layout_hash(&ordered));
        // Insertion order is irrelevant: the set iterates (and hashes)
        // in declaration order.
        let t = EventSet::from_events(&[
            PerfEvent::DiskInterrupts,
            PerfEvent::TlbMisses,
            PerfEvent::Cycles,
        ]);
        assert_eq!(s.layout_hash(), t.layout_hash());
    }

    #[test]
    fn event_set_collects_from_iterator() {
        let s: EventSet = [PerfEvent::Cycles, PerfEvent::Cycles, PerfEvent::L2Misses]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
    }
}
