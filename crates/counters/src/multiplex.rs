//! Time-multiplexed event sampling.
//!
//! A real PMU watches a limited set of events at once; observing more
//! candidates than counters exist (as model-selection experiments need)
//! requires rotating event *groups* across sampling windows and scaling
//! each group's counts by the inverse of its duty cycle — the standard
//! `perf`-style multiplexing discipline. The paper side-steps this by
//! using at most six events (§3.3); this module makes the trade-off
//! explicit and measurable: multiplexed counts are unbiased for
//! steady-state workloads but noisy for phase-changing ones, which is
//! itself an argument for the paper's small final event set.

use crate::bank::{CounterBank, ProgramError};
use crate::event::{EventProvenance, PerfEvent};
use crate::sampler::CounterSample;
use serde::{Deserialize, Serialize};

/// A rotation schedule: which events are observed in which window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiplexSchedule {
    groups: Vec<Vec<PerfEvent>>,
}

impl MultiplexSchedule {
    /// Partitions `events` into groups of at most `slots` PMU events.
    /// OS-provenance events are free (they come from the kernel, not a
    /// counter) and are added to every group.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::TooManyEvents`] if `slots` is zero, and
    /// [`ProgramError::DuplicateEvent`] if an event repeats.
    pub fn new(events: &[PerfEvent], slots: usize) -> Result<Self, ProgramError> {
        if slots == 0 {
            return Err(ProgramError::TooManyEvents {
                requested: events.len(),
                available: 0,
            });
        }
        let mut seen = crate::event::EventSet::new();
        for &e in events {
            if !seen.insert(e) {
                return Err(ProgramError::DuplicateEvent(e));
            }
        }
        let os_events: Vec<PerfEvent> = events
            .iter()
            .copied()
            .filter(|e| e.provenance() == EventProvenance::Os)
            .collect();
        let pmu_events: Vec<PerfEvent> = events
            .iter()
            .copied()
            .filter(|e| e.provenance() == EventProvenance::Pmu)
            .collect();

        let mut groups: Vec<Vec<PerfEvent>> = pmu_events
            .chunks(slots)
            .map(|chunk| {
                let mut g = chunk.to_vec();
                g.extend(os_events.iter().copied());
                g
            })
            .collect();
        if groups.is_empty() {
            groups.push(os_events);
        }
        Ok(Self { groups })
    }

    /// Number of groups in the rotation.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The events observed during rotation slot `index`.
    pub fn group(&self, index: usize) -> &[PerfEvent] {
        &self.groups[index % self.groups.len()]
    }

    /// Fraction of windows during which `event` is observed.
    pub fn duty_cycle(&self, event: PerfEvent) -> f64 {
        let observed = self.groups.iter().filter(|g| g.contains(&event)).count();
        observed as f64 / self.groups.len() as f64
    }
}

/// Rotates a [`CounterBank`]'s programming across a
/// [`MultiplexSchedule`] and produces duty-cycle-corrected samples.
///
/// # Example
///
/// ```
/// use tdp_counters::{
///     CounterBank, CpuId, MultiplexSchedule, MultiplexedSampler, PerfEvent,
/// };
///
/// // Six PMU events through two hardware slots: a 3-group rotation.
/// let events = [
///     PerfEvent::Cycles, PerfEvent::FetchedUops, PerfEvent::L2Misses,
///     PerfEvent::L3LoadMisses, PerfEvent::TlbMisses,
///     PerfEvent::BusTransactionsAll,
/// ];
/// let schedule = MultiplexSchedule::new(&events, 2)?;
/// assert_eq!(schedule.num_groups(), 3);
/// let mut sampler = MultiplexedSampler::new(schedule, CpuId::new(0));
///
/// // Steady workload: 100 units of every event per window.
/// let mut scaled_cycles = 0.0;
/// for window in 0..30 {
///     let bank = sampler.bank_mut();
///     for &e in &events {
///         bank.add(e, 100);
///     }
///     let sample = sampler.rotate(window);
///     if let Some(c) = sample.scaled_count(PerfEvent::Cycles) {
///         scaled_cycles = c;
///     }
/// }
/// // Cycles is observed 1 window in 3, scaled back up by 3.
/// assert_eq!(scaled_cycles, 300.0);
/// # Ok::<(), tdp_counters::ProgramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiplexedSampler {
    schedule: MultiplexSchedule,
    bank: CounterBank,
    slot: usize,
}

/// A duty-cycle-corrected sample from one rotation window.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiplexedSample {
    raw: CounterSample,
    scales: Vec<(PerfEvent, f64)>,
}

impl MultiplexedSample {
    /// The raw counts of the events observed this window.
    pub fn raw(&self) -> &CounterSample {
        &self.raw
    }

    /// The duty-cycle-corrected ("scaled") estimate of `event`'s true
    /// count this window, or `None` if the event was not observed.
    pub fn scaled_count(&self, event: PerfEvent) -> Option<f64> {
        let &(_, scale) = self.scales.iter().find(|(e, _)| *e == event)?;
        self.raw.count(event).map(|c| c as f64 * scale)
    }
}

impl MultiplexedSampler {
    /// Creates a sampler for one CPU.
    pub fn new(schedule: MultiplexSchedule, cpu: crate::CpuId) -> Self {
        let mut bank = CounterBank::new(cpu);
        bank.program(schedule.group(0))
            .expect("schedule groups fit the hardware");
        Self {
            schedule,
            bank,
            slot: 0,
        }
    }

    /// The bank to feed events into during the current window.
    pub fn bank_mut(&mut self) -> &mut CounterBank {
        &mut self.bank
    }

    /// Currently observed group.
    pub fn current_group(&self) -> &[PerfEvent] {
        self.schedule.group(self.slot)
    }

    /// Ends the current window: reads the bank, rotates to the next
    /// group, and returns the duty-corrected sample tagged `seq`.
    pub fn rotate(&mut self, seq: u64) -> MultiplexedSample {
        let raw = self.bank.read_and_clear(seq);
        let scales = self
            .schedule
            .group(self.slot)
            .iter()
            .map(|&e| (e, 1.0 / self.schedule.duty_cycle(e)))
            .collect();
        self.slot = (self.slot + 1) % self.schedule.num_groups();
        self.bank
            .program(self.schedule.group(self.slot))
            .expect("schedule groups fit the hardware");
        MultiplexedSample { raw, scales }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CpuId;

    fn pmu_events(n: usize) -> Vec<PerfEvent> {
        PerfEvent::ALL
            .iter()
            .copied()
            .filter(|e| e.provenance() == EventProvenance::Pmu)
            .take(n)
            .collect()
    }

    #[test]
    fn schedule_partitions_with_os_events_everywhere() {
        let mut events = pmu_events(5);
        events.push(PerfEvent::DiskInterrupts);
        let s = MultiplexSchedule::new(&events, 2).unwrap();
        assert_eq!(s.num_groups(), 3);
        for g in 0..3 {
            assert!(
                s.group(g).contains(&PerfEvent::DiskInterrupts),
                "OS events ride along in every group"
            );
        }
        assert_eq!(s.duty_cycle(PerfEvent::DiskInterrupts), 1.0);
        assert!((s.duty_cycle(events[0]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_slots_rejected() {
        assert!(MultiplexSchedule::new(&pmu_events(3), 0).is_err());
    }

    #[test]
    fn duplicate_event_rejected() {
        let events = vec![PerfEvent::Cycles, PerfEvent::Cycles];
        assert!(matches!(
            MultiplexSchedule::new(&events, 4),
            Err(ProgramError::DuplicateEvent(PerfEvent::Cycles))
        ));
    }

    #[test]
    fn scaled_counts_are_unbiased_for_steady_input() {
        let events = pmu_events(6);
        let schedule = MultiplexSchedule::new(&events, 2).unwrap();
        let mut sampler = MultiplexedSampler::new(schedule, CpuId::new(0));
        let mut totals = vec![0.0f64; events.len()];
        let windows = 30;
        for w in 0..windows {
            for &e in &events {
                sampler.bank_mut().add(e, 50);
            }
            let s = sampler.rotate(w);
            for (i, &e) in events.iter().enumerate() {
                if let Some(c) = s.scaled_count(e) {
                    totals[i] += c;
                }
            }
        }
        // True total per event: 50 × 30 = 1500; scaled sums must match
        // exactly for perfectly steady input.
        for (i, &t) in totals.iter().enumerate() {
            assert!((t - 1500.0).abs() < 1e-9, "event {i}: {t}");
        }
    }

    #[test]
    fn unobserved_events_return_none() {
        let events = pmu_events(4);
        let schedule = MultiplexSchedule::new(&events, 2).unwrap();
        let mut sampler = MultiplexedSampler::new(schedule, CpuId::new(0));
        let s = sampler.rotate(0);
        // Events of the *other* group are not in this window's sample.
        assert!(s.scaled_count(events[2]).is_none());
        assert!(s.scaled_count(events[0]).is_some());
    }

    #[test]
    fn rotation_cycles_through_all_groups() {
        let events = pmu_events(6);
        let schedule = MultiplexSchedule::new(&events, 2).unwrap();
        let mut sampler = MultiplexedSampler::new(schedule, CpuId::new(0));
        let g0: Vec<PerfEvent> = sampler.current_group().to_vec();
        sampler.rotate(0);
        let g1: Vec<PerfEvent> = sampler.current_group().to_vec();
        sampler.rotate(1);
        sampler.rotate(2);
        let g0_again: Vec<PerfEvent> = sampler.current_group().to_vec();
        assert_ne!(g0, g1);
        assert_eq!(g0, g0_again, "period equals the group count");
    }
}
