//! Sampling driver and sample records.

use crate::bank::MAX_HARDWARE_COUNTERS;
use crate::event::PerfEvent;
use crate::interrupts::InterruptSnapshot;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a physical CPU package (0-based).
///
/// # Example
///
/// ```
/// use tdp_counters::CpuId;
///
/// let cpu = CpuId::new(3);
/// assert_eq!(cpu.as_usize(), 3);
/// assert_eq!(cpu.to_string(), "cpu3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CpuId(u8);

impl CpuId {
    /// Creates a CPU id.
    pub fn new(id: u8) -> Self {
        Self(id)
    }

    /// The id as an array index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl From<u8> for CpuId {
    fn from(id: u8) -> Self {
        Self::new(id)
    }
}

/// Flat, allocation-free storage for a sample's `(event, count)`
/// pairs: one inline slot per hardware counter, with a heap spill arm
/// only for over-subscribed synthetic layouts (exploration mode lists
/// more events than a real PMU can count at once).
///
/// Because every sample a [`CounterBank`](crate::CounterBank) can
/// produce fits inline, a `Vec<CounterSample>` (e.g.
/// [`SampleSet::per_cpu`]) is a single contiguous arena of fixed-size,
/// stride-indexed records — readers walk it with no per-CPU pointer
/// chase, and in-place refills touch no allocator.
// The size gap between arms is the design: the big inline arm keeps
// the hot path allocation-free, and boxing it would reintroduce the
// pointer chase this type exists to remove.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
enum CountStore {
    /// Up to [`MAX_HARDWARE_COUNTERS`] pairs stored in place.
    Inline {
        len: u8,
        buf: [(PerfEvent, u64); MAX_HARDWARE_COUNTERS],
    },
    /// More pairs than the hardware can count simultaneously; kept (and
    /// capacity-reused) on the heap.
    Spilled(Vec<(PerfEvent, u64)>),
}

impl CountStore {
    /// Filler for unused inline slots — never visible through
    /// [`as_slice`](Self::as_slice), which stops at `len`.
    const EMPTY_SLOT: (PerfEvent, u64) = (PerfEvent::Cycles, 0);

    fn from_vec(v: Vec<(PerfEvent, u64)>) -> Self {
        if v.len() <= MAX_HARDWARE_COUNTERS {
            let mut buf = [Self::EMPTY_SLOT; MAX_HARDWARE_COUNTERS];
            buf[..v.len()].copy_from_slice(&v);
            CountStore::Inline {
                len: v.len() as u8,
                buf,
            }
        } else {
            CountStore::Spilled(v)
        }
    }

    #[inline]
    fn as_slice(&self) -> &[(PerfEvent, u64)] {
        match self {
            CountStore::Inline { len, buf } => &buf[..*len as usize],
            CountStore::Spilled(v) => v,
        }
    }

    fn clear(&mut self) {
        match self {
            CountStore::Inline { len, .. } => *len = 0,
            // Keep the spilled capacity: a producer that once
            // over-subscribed will likely do so again.
            CountStore::Spilled(v) => v.clear(),
        }
    }

    fn push(&mut self, pair: (PerfEvent, u64)) {
        match self {
            CountStore::Inline { len, buf } => {
                if (*len as usize) < MAX_HARDWARE_COUNTERS {
                    buf[*len as usize] = pair;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(MAX_HARDWARE_COUNTERS * 2);
                    v.extend_from_slice(buf);
                    v.push(pair);
                    *self = CountStore::Spilled(v);
                }
            }
            CountStore::Spilled(v) => v.push(pair),
        }
    }
}

/// The deserialized face of [`CounterSample`] — the pre-arena struct
/// shape, so stored samples round-trip unchanged no matter which
/// [`CountStore`] arm holds them in memory.
#[derive(Deserialize)]
struct SampleRepr {
    cpu: CpuId,
    seq: u64,
    counts: Vec<(PerfEvent, u64)>,
}

/// Event totals read from one CPU's counter bank over one sampling window.
///
/// Counts are stored sparsely as `(event, total)` pairs in event
/// declaration order — inline (flat, fixed-stride) for anything real
/// hardware can produce, so collections of samples are contiguous
/// arenas rather than vectors of heap pointers.
#[derive(Clone)]
pub struct CounterSample {
    cpu: CpuId,
    seq: u64,
    counts: CountStore,
}

/// Hand-rolled to keep the serialized shape exactly what the derive
/// produced when `counts` was a `Vec` — `{"cpu":..,"seq":..,"counts":
/// [..]}` — independent of the in-memory [`CountStore`] arm.
impl Serialize for CounterSample {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"cpu\":");
        self.cpu.serialize_json(out);
        out.push_str(",\"seq\":");
        self.seq.serialize_json(out);
        out.push_str(",\"counts\":[");
        for (i, pair) in self.counts.as_slice().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            pair.serialize_json(out);
        }
        out.push_str("]}");
    }
}

impl Deserialize for CounterSample {
    fn deserialize_json(p: &mut serde::de::Parser<'_>) -> Result<Self, serde::de::Error> {
        SampleRepr::deserialize_json(p).map(|r| CounterSample::new(r.cpu, r.seq, r.counts))
    }
}

impl fmt::Debug for CounterSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CounterSample")
            .field("cpu", &self.cpu)
            .field("seq", &self.seq)
            .field("counts", &self.counts.as_slice())
            .finish()
    }
}

/// Samples compare by what they expose, not by storage arm: an inline
/// store equals a spilled one holding the same pairs.
impl PartialEq for CounterSample {
    fn eq(&self, other: &Self) -> bool {
        self.cpu == other.cpu && self.seq == other.seq && self.counts() == other.counts()
    }
}

impl Eq for CounterSample {}

impl CounterSample {
    /// Creates a sample. `counts` should be in event declaration order, as
    /// produced by [`CounterBank::read_and_clear`](crate::CounterBank::read_and_clear).
    pub fn new(cpu: CpuId, seq: u64, counts: Vec<(PerfEvent, u64)>) -> Self {
        Self {
            cpu,
            seq,
            counts: CountStore::from_vec(counts),
        }
    }

    /// The CPU the sample was read from.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Monotonic sequence number shared with the [`SyncPulse`](crate::SyncPulse)
    /// emitted at the same sampling.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Total count of `event` over the window, or `None` if the event was
    /// not programmed.
    pub fn count(&self, event: PerfEvent) -> Option<u64> {
        self.counts
            .as_slice()
            .iter()
            .find(|(e, _)| *e == event)
            .map(|&(_, c)| c)
    }

    /// `event` count divided by the window's unhalted-cycle count — the
    /// per-cycle rate the paper builds every model input from (§3.3
    /// "Cycles"). Returns `None` if either event is missing, and 0.0 when
    /// the cycle count is zero (a fully halted window).
    pub fn rate_per_cycle(&self, event: PerfEvent) -> Option<f64> {
        let cycles = self.count(PerfEvent::Cycles)?;
        let n = self.count(event)?;
        Some(if cycles == 0 {
            0.0
        } else {
            n as f64 / cycles as f64
        })
    }

    /// Iterates over `(event, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PerfEvent, u64)> + '_ {
        self.counts.as_slice().iter().copied()
    }

    /// The raw `(event, count)` pairs, in the order they were read.
    ///
    /// Inlined so batch ingestion (`tdp-fleet`) can walk the pairs
    /// without an opaque-iterator call per sample.
    #[inline]
    pub fn counts(&self) -> &[(PerfEvent, u64)] {
        self.counts.as_slice()
    }

    /// Re-tags the sample and clears its counts for refilling in place
    /// with [`push_count`](Self::push_count) — the store-reuse path
    /// behind
    /// [`CounterBank::read_and_clear_into`](crate::CounterBank::read_and_clear_into).
    pub(crate) fn reset_for(&mut self, cpu: CpuId, seq: u64) {
        self.cpu = cpu;
        self.seq = seq;
        self.counts.clear();
    }

    /// Appends one `(event, count)` pair (spilling to the heap only
    /// past the hardware-counter limit).
    pub(crate) fn push_count(&mut self, pair: (PerfEvent, u64)) {
        self.counts.push(pair);
    }

    /// Re-tags the sample and replaces its counts in place, reusing the
    /// existing store (the inline buffer, or a spilled allocation) —
    /// the public face of the refill path behind
    /// [`CounterBank::read_and_clear_into`](crate::CounterBank::read_and_clear_into),
    /// for callers that cycle a fixed pool of sample buffers instead of
    /// allocating one per read.
    pub fn refill(
        &mut self,
        cpu: CpuId,
        seq: u64,
        pairs: impl IntoIterator<Item = (PerfEvent, u64)>,
    ) {
        self.reset_for(cpu, seq);
        for pair in pairs {
            self.counts.push(pair);
        }
    }
}

/// One synchronized read of every CPU's counters plus the OS interrupt
/// accounting, tagged with simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleSet {
    /// Simulated time at the end of the window, in milliseconds.
    pub time_ms: u64,
    /// Length of the window in milliseconds (nominally 1000, with jitter).
    pub window_ms: u64,
    /// Monotonic sequence number (matches the sync pulse).
    pub seq: u64,
    /// One sample per CPU, indexed by CPU id. Samples store their
    /// counts inline, so this vector is one contiguous, stride-indexed
    /// arena — extraction walks it without per-CPU pointer chases.
    pub per_cpu: Vec<CounterSample>,
    /// OS interrupt-source deltas over the same window.
    pub interrupts: InterruptSnapshot,
}

impl SampleSet {
    /// An empty set suitable as the reusable buffer for in-place refills
    /// (e.g. `Machine::read_counters_into` in `tdp-simsys`).
    pub fn empty() -> Self {
        Self {
            time_ms: 0,
            window_ms: 0,
            seq: 0,
            per_cpu: Vec::new(),
            interrupts: InterruptSnapshot::default(),
        }
    }

    /// Sum of `event` over all CPUs; `None` if any CPU lacks the event.
    pub fn total(&self, event: PerfEvent) -> Option<u64> {
        self.per_cpu.iter().map(|s| s.count(event)).sum()
    }

    /// Number of CPUs in the set.
    pub fn num_cpus(&self) -> usize {
        self.per_cpu.len()
    }
}

/// Configuration for the [`SamplingDriver`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Nominal sampling period in milliseconds (paper: 1000).
    pub period_ms: u64,
    /// Maximum absolute jitter applied to each period, in milliseconds.
    /// The paper notes the actual sampling rate "varies slightly due to
    /// cache effects and interrupt latency" (§3.3 "Cycles").
    pub max_jitter_ms: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            period_ms: 1000,
            max_jitter_ms: 3,
        }
    }
}

/// Decides *when* counters are read, reproducing the paper's 1 Hz
/// self-sampling with jitter.
///
/// The driver is a pure schedule: the caller advances simulated time with
/// [`poll`](SamplingDriver::poll) and performs the actual bank reads when
/// it returns a sequence number. Jitter is supplied by the caller (the
/// machine's RNG) through [`set_next_jitter`](SamplingDriver::set_next_jitter)
/// so this crate stays free of RNG dependencies.
///
/// # Example
///
/// ```
/// use tdp_counters::{SamplerConfig, SamplingDriver};
///
/// let mut driver = SamplingDriver::new(SamplerConfig { period_ms: 1000, max_jitter_ms: 0 });
/// assert_eq!(driver.poll(999), None);
/// assert_eq!(driver.poll(1000), Some(0));
/// assert_eq!(driver.poll(1001), None, "already fired for this window");
/// assert_eq!(driver.poll(2000), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct SamplingDriver {
    config: SamplerConfig,
    next_due_ms: u64,
    next_jitter_ms: i64,
    seq: u64,
    last_fire_ms: u64,
}

impl SamplingDriver {
    /// Creates a driver that first fires one period after time zero.
    pub fn new(config: SamplerConfig) -> Self {
        Self {
            config,
            next_due_ms: config.period_ms,
            next_jitter_ms: 0,
            seq: 0,
            last_fire_ms: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> SamplerConfig {
        self.config
    }

    /// Sets the jitter (clamped to ±`max_jitter_ms`) added to the *next*
    /// firing time.
    pub fn set_next_jitter(&mut self, jitter_ms: i64) {
        let max = self.config.max_jitter_ms as i64;
        self.next_jitter_ms = jitter_ms.clamp(-max, max);
    }

    /// Advances to `now_ms`; returns the sample sequence number if a
    /// sampling is due.
    pub fn poll(&mut self, now_ms: u64) -> Option<u64> {
        let due = self.next_due_ms.saturating_add_signed(self.next_jitter_ms);
        if now_ms >= due {
            let seq = self.seq;
            self.seq += 1;
            self.last_fire_ms = now_ms;
            self.next_due_ms = now_ms + self.config.period_ms;
            self.next_jitter_ms = 0;
            Some(seq)
        } else {
            None
        }
    }

    /// Time of the most recent firing (0 before the first).
    pub fn last_fire_ms(&self) -> u64 {
        self.last_fire_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_per_cycle_handles_zero_cycles() {
        let s = CounterSample::new(
            CpuId::new(0),
            0,
            vec![(PerfEvent::Cycles, 0), (PerfEvent::FetchedUops, 0)],
        );
        assert_eq!(s.rate_per_cycle(PerfEvent::FetchedUops), Some(0.0));
    }

    #[test]
    fn rate_per_cycle_missing_event_is_none() {
        let s = CounterSample::new(CpuId::new(0), 0, vec![(PerfEvent::Cycles, 10)]);
        assert_eq!(s.rate_per_cycle(PerfEvent::TlbMisses), None);
    }

    /// The inline/spilled split is invisible: every accessor, equality
    /// and the serialized form behave identically on both arms, and
    /// pushing past the hardware limit spills without losing pairs.
    #[test]
    fn count_store_spill_is_invisible() {
        let inline_pairs: Vec<(PerfEvent, u64)> = PerfEvent::ALL
            .iter()
            .take(MAX_HARDWARE_COUNTERS)
            .enumerate()
            .map(|(i, &e)| (e, i as u64 * 7 + 1))
            .collect();
        let spilled_pairs: Vec<(PerfEvent, u64)> = PerfEvent::ALL
            .iter()
            .cycle()
            .take(MAX_HARDWARE_COUNTERS + 15)
            .enumerate()
            .map(|(i, &e)| (e, i as u64))
            .collect();
        assert_eq!(PerfEvent::ALL.len(), MAX_HARDWARE_COUNTERS);

        let a = CounterSample::new(CpuId::new(3), 9, inline_pairs.clone());
        assert_eq!(a.counts(), inline_pairs.as_slice());
        let b = CounterSample::new(CpuId::new(3), 9, spilled_pairs.clone());
        assert_eq!(b.counts(), spilled_pairs.as_slice());
        assert_ne!(a, b);

        // Refill in place from empty past the limit: spills, keeps all.
        let mut c = CounterSample::new(CpuId::new(0), 0, Vec::new());
        c.reset_for(CpuId::new(3), 9);
        for &p in &spilled_pairs {
            c.push_count(p);
        }
        assert_eq!(c, b, "pushed-past-limit sample equals the spilled one");

        // A spilled store refilled with few pairs still compares equal
        // to an inline-born sample (equality is by exposed pairs).
        c.reset_for(CpuId::new(3), 9);
        for &p in &inline_pairs {
            c.push_count(p);
        }
        assert_eq!(c, a);

        // Serialized form is the pre-arena struct shape — exactly what
        // the derive emits for {cpu, seq, counts: Vec} — for both arms,
        // and round-trips exactly.
        #[derive(Serialize)]
        struct FlatShape {
            cpu: CpuId,
            seq: u64,
            counts: Vec<(PerfEvent, u64)>,
        }
        for (s, pairs) in [(&a, &inline_pairs), (&b, &spilled_pairs)] {
            let json = serde_json::to_string(s).unwrap();
            let flat = FlatShape {
                cpu: CpuId::new(3),
                seq: 9,
                counts: pairs.clone(),
            };
            assert_eq!(
                json,
                serde_json::to_string(&flat).unwrap(),
                "serialized shape must be the flat struct"
            );
            let back: CounterSample = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, s);
        }
    }

    #[test]
    fn sample_set_total_sums_across_cpus() {
        let mk = |cpu, n| CounterSample::new(CpuId::new(cpu), 0, vec![(PerfEvent::L2Misses, n)]);
        let set = SampleSet {
            time_ms: 1000,
            window_ms: 1000,
            seq: 0,
            per_cpu: vec![mk(0, 5), mk(1, 7)],
            interrupts: InterruptSnapshot::default(),
        };
        assert_eq!(set.total(PerfEvent::L2Misses), Some(12));
        assert_eq!(set.total(PerfEvent::Cycles), None);
    }

    #[test]
    fn driver_applies_positive_and_negative_jitter() {
        let mut d = SamplingDriver::new(SamplerConfig {
            period_ms: 1000,
            max_jitter_ms: 5,
        });
        d.set_next_jitter(3);
        assert_eq!(d.poll(1002), None);
        assert_eq!(d.poll(1003), Some(0));
        d.set_next_jitter(-5);
        assert_eq!(d.poll(1998), Some(1), "fires 5 ms early");
    }

    #[test]
    fn driver_clamps_jitter_to_config() {
        let mut d = SamplingDriver::new(SamplerConfig {
            period_ms: 1000,
            max_jitter_ms: 2,
        });
        d.set_next_jitter(1_000_000);
        assert_eq!(d.poll(1002), Some(0), "jitter clamped to +2 ms");
    }

    #[test]
    fn driver_periods_measured_from_actual_fire_time() {
        let mut d = SamplingDriver::new(SamplerConfig {
            period_ms: 100,
            max_jitter_ms: 0,
        });
        // Fire late at 130; next window is anchored at 230, not 200.
        assert_eq!(d.poll(130), Some(0));
        assert_eq!(d.poll(229), None);
        assert_eq!(d.poll(230), Some(1));
    }
}
