//! Sampling driver and sample records.

use crate::event::PerfEvent;
use crate::interrupts::InterruptSnapshot;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a physical CPU package (0-based).
///
/// # Example
///
/// ```
/// use tdp_counters::CpuId;
///
/// let cpu = CpuId::new(3);
/// assert_eq!(cpu.as_usize(), 3);
/// assert_eq!(cpu.to_string(), "cpu3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CpuId(u8);

impl CpuId {
    /// Creates a CPU id.
    pub fn new(id: u8) -> Self {
        Self(id)
    }

    /// The id as an array index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl From<u8> for CpuId {
    fn from(id: u8) -> Self {
        Self::new(id)
    }
}

/// Event totals read from one CPU's counter bank over one sampling window.
///
/// Counts are stored sparsely as `(event, total)` pairs in event
/// declaration order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    cpu: CpuId,
    seq: u64,
    counts: Vec<(PerfEvent, u64)>,
}

impl CounterSample {
    /// Creates a sample. `counts` should be in event declaration order, as
    /// produced by [`CounterBank::read_and_clear`](crate::CounterBank::read_and_clear).
    pub fn new(cpu: CpuId, seq: u64, counts: Vec<(PerfEvent, u64)>) -> Self {
        Self { cpu, seq, counts }
    }

    /// The CPU the sample was read from.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Monotonic sequence number shared with the [`SyncPulse`](crate::SyncPulse)
    /// emitted at the same sampling.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Total count of `event` over the window, or `None` if the event was
    /// not programmed.
    pub fn count(&self, event: PerfEvent) -> Option<u64> {
        self.counts
            .iter()
            .find(|(e, _)| *e == event)
            .map(|&(_, c)| c)
    }

    /// `event` count divided by the window's unhalted-cycle count — the
    /// per-cycle rate the paper builds every model input from (§3.3
    /// "Cycles"). Returns `None` if either event is missing, and 0.0 when
    /// the cycle count is zero (a fully halted window).
    pub fn rate_per_cycle(&self, event: PerfEvent) -> Option<f64> {
        let cycles = self.count(PerfEvent::Cycles)?;
        let n = self.count(event)?;
        Some(if cycles == 0 {
            0.0
        } else {
            n as f64 / cycles as f64
        })
    }

    /// Iterates over `(event, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PerfEvent, u64)> + '_ {
        self.counts.iter().copied()
    }

    /// The raw `(event, count)` pairs, in the order they were read.
    ///
    /// Inlined so batch ingestion (`tdp-fleet`) can walk the pairs
    /// without an opaque-iterator call per sample.
    #[inline]
    pub fn counts(&self) -> &[(PerfEvent, u64)] {
        &self.counts
    }

    /// Re-tags the sample and clears its counts for refilling in place,
    /// returning the count buffer — the buffer-reuse path behind
    /// [`CounterBank::read_and_clear_into`](crate::CounterBank::read_and_clear_into).
    pub(crate) fn reset_for(&mut self, cpu: CpuId, seq: u64) -> &mut Vec<(PerfEvent, u64)> {
        self.cpu = cpu;
        self.seq = seq;
        self.counts.clear();
        &mut self.counts
    }
}

/// One synchronized read of every CPU's counters plus the OS interrupt
/// accounting, tagged with simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleSet {
    /// Simulated time at the end of the window, in milliseconds.
    pub time_ms: u64,
    /// Length of the window in milliseconds (nominally 1000, with jitter).
    pub window_ms: u64,
    /// Monotonic sequence number (matches the sync pulse).
    pub seq: u64,
    /// One sample per CPU, indexed by CPU id.
    pub per_cpu: Vec<CounterSample>,
    /// OS interrupt-source deltas over the same window.
    pub interrupts: InterruptSnapshot,
}

impl SampleSet {
    /// An empty set suitable as the reusable buffer for in-place refills
    /// (e.g. `Machine::read_counters_into` in `tdp-simsys`).
    pub fn empty() -> Self {
        Self {
            time_ms: 0,
            window_ms: 0,
            seq: 0,
            per_cpu: Vec::new(),
            interrupts: InterruptSnapshot::default(),
        }
    }

    /// Sum of `event` over all CPUs; `None` if any CPU lacks the event.
    pub fn total(&self, event: PerfEvent) -> Option<u64> {
        self.per_cpu.iter().map(|s| s.count(event)).sum()
    }

    /// Number of CPUs in the set.
    pub fn num_cpus(&self) -> usize {
        self.per_cpu.len()
    }
}

/// Configuration for the [`SamplingDriver`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Nominal sampling period in milliseconds (paper: 1000).
    pub period_ms: u64,
    /// Maximum absolute jitter applied to each period, in milliseconds.
    /// The paper notes the actual sampling rate "varies slightly due to
    /// cache effects and interrupt latency" (§3.3 "Cycles").
    pub max_jitter_ms: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            period_ms: 1000,
            max_jitter_ms: 3,
        }
    }
}

/// Decides *when* counters are read, reproducing the paper's 1 Hz
/// self-sampling with jitter.
///
/// The driver is a pure schedule: the caller advances simulated time with
/// [`poll`](SamplingDriver::poll) and performs the actual bank reads when
/// it returns a sequence number. Jitter is supplied by the caller (the
/// machine's RNG) through [`set_next_jitter`](SamplingDriver::set_next_jitter)
/// so this crate stays free of RNG dependencies.
///
/// # Example
///
/// ```
/// use tdp_counters::{SamplerConfig, SamplingDriver};
///
/// let mut driver = SamplingDriver::new(SamplerConfig { period_ms: 1000, max_jitter_ms: 0 });
/// assert_eq!(driver.poll(999), None);
/// assert_eq!(driver.poll(1000), Some(0));
/// assert_eq!(driver.poll(1001), None, "already fired for this window");
/// assert_eq!(driver.poll(2000), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct SamplingDriver {
    config: SamplerConfig,
    next_due_ms: u64,
    next_jitter_ms: i64,
    seq: u64,
    last_fire_ms: u64,
}

impl SamplingDriver {
    /// Creates a driver that first fires one period after time zero.
    pub fn new(config: SamplerConfig) -> Self {
        Self {
            config,
            next_due_ms: config.period_ms,
            next_jitter_ms: 0,
            seq: 0,
            last_fire_ms: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> SamplerConfig {
        self.config
    }

    /// Sets the jitter (clamped to ±`max_jitter_ms`) added to the *next*
    /// firing time.
    pub fn set_next_jitter(&mut self, jitter_ms: i64) {
        let max = self.config.max_jitter_ms as i64;
        self.next_jitter_ms = jitter_ms.clamp(-max, max);
    }

    /// Advances to `now_ms`; returns the sample sequence number if a
    /// sampling is due.
    pub fn poll(&mut self, now_ms: u64) -> Option<u64> {
        let due = self.next_due_ms.saturating_add_signed(self.next_jitter_ms);
        if now_ms >= due {
            let seq = self.seq;
            self.seq += 1;
            self.last_fire_ms = now_ms;
            self.next_due_ms = now_ms + self.config.period_ms;
            self.next_jitter_ms = 0;
            Some(seq)
        } else {
            None
        }
    }

    /// Time of the most recent firing (0 before the first).
    pub fn last_fire_ms(&self) -> u64 {
        self.last_fire_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_per_cycle_handles_zero_cycles() {
        let s = CounterSample::new(
            CpuId::new(0),
            0,
            vec![(PerfEvent::Cycles, 0), (PerfEvent::FetchedUops, 0)],
        );
        assert_eq!(s.rate_per_cycle(PerfEvent::FetchedUops), Some(0.0));
    }

    #[test]
    fn rate_per_cycle_missing_event_is_none() {
        let s = CounterSample::new(CpuId::new(0), 0, vec![(PerfEvent::Cycles, 10)]);
        assert_eq!(s.rate_per_cycle(PerfEvent::TlbMisses), None);
    }

    #[test]
    fn sample_set_total_sums_across_cpus() {
        let mk = |cpu, n| CounterSample::new(CpuId::new(cpu), 0, vec![(PerfEvent::L2Misses, n)]);
        let set = SampleSet {
            time_ms: 1000,
            window_ms: 1000,
            seq: 0,
            per_cpu: vec![mk(0, 5), mk(1, 7)],
            interrupts: InterruptSnapshot::default(),
        };
        assert_eq!(set.total(PerfEvent::L2Misses), Some(12));
        assert_eq!(set.total(PerfEvent::Cycles), None);
    }

    #[test]
    fn driver_applies_positive_and_negative_jitter() {
        let mut d = SamplingDriver::new(SamplerConfig {
            period_ms: 1000,
            max_jitter_ms: 5,
        });
        d.set_next_jitter(3);
        assert_eq!(d.poll(1002), None);
        assert_eq!(d.poll(1003), Some(0));
        d.set_next_jitter(-5);
        assert_eq!(d.poll(1998), Some(1), "fires 5 ms early");
    }

    #[test]
    fn driver_clamps_jitter_to_config() {
        let mut d = SamplingDriver::new(SamplerConfig {
            period_ms: 1000,
            max_jitter_ms: 2,
        });
        d.set_next_jitter(1_000_000);
        assert_eq!(d.poll(1002), Some(0), "jitter clamped to +2 ms");
    }

    #[test]
    fn driver_periods_measured_from_actual_fire_time() {
        let mut d = SamplingDriver::new(SamplerConfig {
            period_ms: 100,
            max_jitter_ms: 0,
        });
        // Fire late at 130; next window is anchored at 230, not 200.
        assert_eq!(d.poll(130), Some(0));
        assert_eq!(d.poll(229), None);
        assert_eq!(d.poll(230), Some(1));
    }
}
