//! Criterion benches for the telemetry wire codec.
//!
//! Companion to `repro --wire N` (which measures the full comparison
//! and writes `BENCH_wire.json`): these isolate the per-window codec
//! costs at a fixed fleet size so regressions show up as per-iteration
//! deltas. `frames/s = (2 × MACHINES) / iteration time` for the decode
//! benches (layout + sample frame per machine).
//!
//! The legacy `wire/*_256` names are pinned to the **varint** frame
//! format so their history stays comparable across report generations;
//! the `wire/planar_*_256` group runs the same paths over column-planar
//! frames. The `wire/stage_*` group isolates the fused path's
//! constituent stages — checksum mix, payload decode (bulk varint or
//! planar widen/zigzag/unfold), batched health scan, SampleSet→column
//! extraction — mirroring the `stage_*_ns_per_machine` fields of
//! `BENCH_wire.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tdp_bench::fleet::synthetic_set;
use tdp_bench::ExperimentConfig;
use tdp_counters::SampleSet;
use tdp_fleet::{fold_event_lanes, FleetEstimator, SampleBatch, ROW_EVENTS};
use tdp_parallel::WorkerPool;
use tdp_wire::frame::{FrameType, PayloadChecksum};
use tdp_wire::planar::decode_planes;
use tdp_wire::varint::read_uvarints;
use tdp_wire::{
    ingest_serial, stream_window, CursorItem, DegradePolicy, FrameCursor, FrameDecoder, FrameKind,
    StreamConfig, WireEncoder,
};
use trickledown::SystemPowerModel;

const MACHINES: usize = 256;

fn synthetic_window() -> Vec<SampleSet> {
    let seed = ExperimentConfig::default().seed;
    (0..MACHINES).map(|m| synthetic_set(m, seed)).collect()
}

fn encode_window(kind: FrameKind, sets: &[SampleSet]) -> Vec<u8> {
    let mut enc = WireEncoder::with_kind(kind);
    for (m, set) in sets.iter().enumerate() {
        enc.push_sample_set(m as u64, set).expect("encodes");
    }
    enc.finish()
}

/// Registers the encode/decode/fused/streamed path benches for one
/// frame format under the given name prefix.
fn bench_paths(c: &mut Criterion, prefix: &str, kind: FrameKind, sets: &[SampleSet]) {
    let buf = encode_window(kind, sets);
    let model = SystemPowerModel::paper();

    c.bench_function(&format!("wire/{prefix}encode_window_256"), |b| {
        b.iter(|| black_box(encode_window(kind, sets).len()))
    });

    c.bench_function(&format!("wire/{prefix}decode_only_256"), |b| {
        b.iter(|| {
            let mut dec = FrameDecoder::new();
            let mut cursor = FrameCursor::new(&buf);
            let mut frames = 0u64;
            while let Some(item) = cursor.next() {
                if let CursorItem::Frame { start, header } = item {
                    let decoded = dec
                        .decode_frame(&header, cursor.payload(start, &header))
                        .expect("clean stream");
                    black_box(&decoded);
                    frames += 1;
                }
            }
            black_box(frames)
        })
    });

    let mut fused = FleetEstimator::with_capacity(model.clone(), MACHINES);
    c.bench_function(&format!("wire/{prefix}fused_decode_estimate_256"), |b| {
        b.iter(|| {
            ingest_serial(&buf, MACHINES, &mut fused);
            black_box(fused.estimate().fleet_total())
        })
    });

    let pool = WorkerPool::global();
    let cfg = StreamConfig::default();
    let mut streamed = FleetEstimator::with_capacity(model, MACHINES);
    c.bench_function(&format!("wire/{prefix}streamed_decode_estimate_256"), |b| {
        b.iter(|| {
            stream_window(pool, &cfg, &buf, MACHINES, &mut streamed);
            black_box(streamed.estimate().fleet_total())
        })
    });
}

fn bench_wire_window(c: &mut Criterion) {
    let sets = synthetic_window();

    // Legacy names = varint frames (historical continuity).
    bench_paths(c, "", FrameKind::Varint, &sets);
    bench_paths(c, "planar_", FrameKind::Planar, &sets);

    let mut in_memory = FleetEstimator::with_capacity(SystemPowerModel::paper(), MACHINES);
    c.bench_function("wire/in_memory_baseline_256", |b| {
        b.iter(|| black_box(in_memory.process_window(&sets).fleet_total()))
    });
}

fn bench_wire_stages(c: &mut Criterion) {
    let sets = synthetic_window();
    let buf = encode_window(FrameKind::Varint, &sets);
    let planar_buf = encode_window(FrameKind::Planar, &sets);
    let d = tdp_simd::Dispatch::active();

    c.bench_function("wire/stage_checksum_256", |b| {
        b.iter(|| {
            let mut cursor = FrameCursor::new(&buf);
            let mut acc = 0u64;
            while let Some(item) = cursor.next() {
                if let CursorItem::Frame { start, header } = item {
                    acc ^= header.expected_checksum(cursor.payload(start, &header));
                }
            }
            black_box(acc)
        })
    });

    let mut scratch: Vec<u64> = Vec::new();
    c.bench_function("wire/stage_varint_256", |b| {
        b.iter(|| {
            let mut cursor = FrameCursor::new(&buf);
            while let Some(item) = cursor.next() {
                if let CursorItem::Frame { start, header } = item {
                    if header.frame_type != FrameType::Sample {
                        continue;
                    }
                    let payload = cursor.payload(start, &header);
                    let n = header.cpu_count as usize * header.n_events as usize;
                    scratch.resize(n, 0);
                    let mut pos = 0usize;
                    read_uvarints(d, payload, &mut pos, &mut scratch).expect("clean varints");
                    black_box(&scratch);
                }
            }
        })
    });

    // Planar counterpart of the varint stage: the fused single-pass
    // decode — unzigzag + unfold + widen straight to f64 lanes, with
    // the checksum absorbed while the payload bytes are cache-hot.
    let mut lanes: Vec<f64> = Vec::new();
    c.bench_function("wire/planar_stage_payload_256", |b| {
        b.iter(|| {
            let mut cursor = FrameCursor::new(&planar_buf);
            while let Some(item) = cursor.next() {
                if let CursorItem::Frame { start, header } = item {
                    if header.frame_type != FrameType::PlanarSample {
                        continue;
                    }
                    let payload = cursor.payload(start, &header);
                    let mut ck = PayloadChecksum::new(&header);
                    decode_planes(
                        d,
                        payload,
                        header.n_events as usize,
                        header.cpu_count as usize,
                        false,
                        &mut lanes,
                        &mut scratch,
                        &mut ck,
                    )
                    .expect("clean planar payload");
                    black_box(&lanes);
                }
            }
        })
    });

    let mut batch = SampleBatch::with_capacity(MACHINES);
    c.bench_function("wire/stage_extraction_256", |b| {
        b.iter(|| {
            batch.clear();
            for set in &sets {
                batch.push_sample_set(set);
            }
            black_box(batch.len())
        })
    });

    // The fused fold stages: decoded f64 event lanes → one fleet row
    // (`fold_event_lanes` — what the decode-to-column fusion runs per
    // machine after the payload walk), and the whole-fleet fold into
    // batch columns. Lanes staged once outside the timed loop, exactly
    // as the decoder's lane buffer would hold them.
    let cpus = sets[0].per_cpu.len();
    let n_ev = ROW_EVENTS.len();
    let lane_stride = n_ev * cpus;
    let mut fold_lanes = vec![0.0f64; MACHINES * lane_stride];
    for (m, set) in sets.iter().enumerate() {
        for (c, cpu) in set.per_cpu.iter().enumerate() {
            for (e, &(_, count)) in cpu.counts().iter().enumerate() {
                fold_lanes[m * lane_stride + e * cpus + c] = count as f64;
            }
        }
    }
    let identity_pos: [u16; 9] = std::array::from_fn(|k| k as u16);
    c.bench_function("wire/planar_fold_row_256", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for m in 0..MACHINES {
                let row = fold_event_lanes(
                    d,
                    &fold_lanes[m * lane_stride..(m + 1) * lane_stride],
                    cpus,
                    &identity_pos,
                    true,
                );
                acc += row[1];
            }
            black_box(acc)
        })
    });

    let mut fold_batch = SampleBatch::with_capacity(MACHINES);
    c.bench_function("wire/planar_fold_columns_256", |b| {
        b.iter(|| {
            fold_batch.clear();
            for m in 0..MACHINES {
                fold_batch.push_row(fold_event_lanes(
                    d,
                    &fold_lanes[m * lane_stride..(m + 1) * lane_stride],
                    cpus,
                    &identity_pos,
                    true,
                ));
            }
            black_box(fold_batch.len())
        })
    });

    let policy = DegradePolicy::default();
    let mut mask: Vec<u8> = Vec::new();
    c.bench_function("wire/stage_health_256", |b| {
        b.iter(|| {
            policy.sane_mask_batch(d, batch.columns(), &mut mask);
            black_box(mask.iter().map(|&m| m as u64).sum::<u64>())
        })
    });
}

criterion_group!(benches, bench_wire_window, bench_wire_stages);
criterion_main!(benches);
