//! Criterion benches for the telemetry wire codec.
//!
//! Companion to `repro --wire N` (which measures the full five-way
//! comparison and writes `BENCH_wire.json`): these isolate the
//! per-window codec costs at a fixed fleet size so regressions show up
//! as per-iteration deltas. `frames/s = (2 × MACHINES) / iteration
//! time` for the decode benches (layout + sample frame per machine).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tdp_bench::fleet::synthetic_set;
use tdp_bench::ExperimentConfig;
use tdp_counters::SampleSet;
use tdp_fleet::FleetEstimator;
use tdp_parallel::WorkerPool;
use tdp_wire::{
    ingest_serial, stream_window, CursorItem, FrameCursor, FrameDecoder, StreamConfig, WireEncoder,
};
use trickledown::SystemPowerModel;

const MACHINES: usize = 256;

fn synthetic_window() -> Vec<SampleSet> {
    let seed = ExperimentConfig::default().seed;
    (0..MACHINES).map(|m| synthetic_set(m, seed)).collect()
}

fn encode_window(sets: &[SampleSet]) -> Vec<u8> {
    let mut enc = WireEncoder::new();
    for (m, set) in sets.iter().enumerate() {
        enc.push_sample_set(m as u64, set).expect("encodes");
    }
    enc.finish()
}

fn bench_wire_window(c: &mut Criterion) {
    let sets = synthetic_window();
    let buf = encode_window(&sets);
    let model = SystemPowerModel::paper();

    c.bench_function("wire/encode_window_256", |b| {
        b.iter(|| black_box(encode_window(&sets).len()))
    });

    c.bench_function("wire/decode_only_256", |b| {
        b.iter(|| {
            let mut dec = FrameDecoder::new();
            let mut cursor = FrameCursor::new(&buf);
            let mut frames = 0u64;
            while let Some(item) = cursor.next() {
                if let CursorItem::Frame { start, header } = item {
                    let decoded = dec
                        .decode_frame(&header, cursor.payload(start, &header))
                        .expect("clean stream");
                    black_box(&decoded);
                    frames += 1;
                }
            }
            black_box(frames)
        })
    });

    let mut fused = FleetEstimator::with_capacity(model.clone(), MACHINES);
    c.bench_function("wire/fused_decode_estimate_256", |b| {
        b.iter(|| {
            ingest_serial(&buf, MACHINES, &mut fused);
            black_box(fused.estimate().fleet_total())
        })
    });

    let pool = WorkerPool::global();
    let cfg = StreamConfig::default();
    let mut streamed = FleetEstimator::with_capacity(model.clone(), MACHINES);
    c.bench_function("wire/streamed_decode_estimate_256", |b| {
        b.iter(|| {
            stream_window(pool, &cfg, &buf, MACHINES, &mut streamed);
            black_box(streamed.estimate().fleet_total())
        })
    });

    let mut in_memory = FleetEstimator::with_capacity(model.clone(), MACHINES);
    c.bench_function("wire/in_memory_baseline_256", |b| {
        b.iter(|| black_box(in_memory.process_window(&sets).fleet_total()))
    });
}

criterion_group!(benches, bench_wire_window);
criterion_main!(benches);
