//! One bench per paper artifact: times the regeneration of each table
//! and figure at smoke scale (the full-scale numbers come from the
//! `repro` binary; these benches keep the regeneration paths exercised
//! and measured).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tdp_bench::experiments::{tables_1_and_2, tables_3_and_4};
use tdp_bench::figures::{fig2, fig3, fig4_fig5, fig6_fig7};
use tdp_bench::{calibrate, capture_workload, ExperimentConfig};
use tdp_workloads::Workload;

fn smoke_cfg(tag: &str) -> ExperimentConfig {
    ExperimentConfig {
        seed: 1234,
        trace_seconds: 8,
        ramp_seconds: 1,
        out_dir: std::env::temp_dir().join(format!("tdp-bench-criterion-{tag}")),
    }
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);

    let cfg = smoke_cfg("tables");
    group.bench_function("table1_table2_regeneration", |b| {
        b.iter(|| {
            let traces = vec![
                capture_workload(&cfg, Workload::Idle),
                capture_workload(&cfg, Workload::Mesa),
                capture_workload(&cfg, Workload::DiskLoad),
            ];
            black_box(tables_1_and_2(&cfg, &traces))
        })
    });

    let model = calibrate(&cfg);
    let traces = vec![
        capture_workload(&cfg, Workload::Idle),
        capture_workload(&cfg, Workload::Vortex),
    ];
    group.bench_function("table3_table4_validation", |b| {
        b.iter(|| black_box(tables_3_and_4(&cfg, &model, &traces)))
    });
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    let cfg = smoke_cfg("figures");
    let model = calibrate(&cfg);
    group.bench_function("fig2_cpu_trace", |b| {
        b.iter(|| black_box(fig2(&cfg, &model)))
    });
    group.bench_function("fig3_memory_l3", |b| b.iter(|| black_box(fig3(&cfg))));
    group.bench_function("fig4_fig5_mcf_ramp", |b| {
        b.iter(|| black_box(fig4_fig5(&cfg)))
    });
    group.bench_function("fig6_fig7_diskload", |b| {
        b.iter(|| black_box(fig6_fig7(&cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);
