//! Benchmarks of the simulation substrate: how fast the machine, cache
//! model, disks and measurement chain run. These set the cost of every
//! experiment in the repro harness.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tdp_powermeter::{PowerMeter, PowerSpec};
use tdp_simsys::behavior::ReuseProfile;
use tdp_simsys::cache::CacheHierarchy;
use tdp_simsys::disk::{CommandId, DiskCommand, ScsiDisk};
use tdp_simsys::{Machine, MachineConfig, SimRng};
use tdp_workloads::{Workload, WorkloadSet};

fn bench_machine_ticks(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    group.throughput(Throughput::Elements(1000));

    group.bench_function("tick_x1000_idle", |b| {
        let mut machine = Machine::new(MachineConfig::default());
        b.iter(|| {
            for _ in 0..1000 {
                black_box(machine.tick());
            }
        })
    });

    group.bench_function("tick_x1000_8x_specjbb", |b| {
        let mut machine = Machine::new(MachineConfig::default());
        WorkloadSet::new(Workload::SpecJbb, 8, 0).deploy(&mut machine);
        b.iter(|| {
            for _ in 0..1000 {
                black_box(machine.tick());
            }
        })
    });

    group.bench_function("tick_x1000_diskload", |b| {
        let mut machine = Machine::new(MachineConfig::default());
        WorkloadSet::new(Workload::DiskLoad, 4, 0).deploy(&mut machine);
        b.iter(|| {
            for _ in 0..1000 {
                black_box(machine.tick());
            }
        })
    });
    group.finish();
}

fn bench_components(c: &mut Criterion) {
    c.bench_function("cache/simulate_100k_accesses", |b| {
        let hierarchy = CacheHierarchy::new(MachineConfig::default().cache);
        let profile = ReuseProfile::new(&[
            (100.0, 0.7),
            (3_000.0, 0.2),
            (14_000.0, 0.08),
            (f64::INFINITY, 0.02),
        ]);
        let mut rng = SimRng::seed(1);
        b.iter(|| {
            hierarchy.simulate(
                black_box(80_000),
                black_box(20_000),
                &profile,
                0.5,
                &mut rng,
            )
        })
    });

    c.bench_function("disk/tick_with_queue", |b| {
        let mut disk = ScsiDisk::new(MachineConfig::default().disk, SimRng::seed(2));
        let mut next = 0u64;
        b.iter(|| {
            if disk.outstanding() < 8 {
                next += 1;
                disk.submit(DiskCommand {
                    id: CommandId(next),
                    position: (next as f64 * 0.17) % 1.0,
                    bytes: 256 * 1024,
                    write: next.is_multiple_of(2),
                });
            }
            black_box(disk.tick())
        })
    });

    c.bench_function("powermeter/observe_one_tick", |b| {
        let mut machine = Machine::new(MachineConfig::default());
        let mut meter = PowerMeter::new(PowerSpec::default(), 3);
        let activity = machine.tick();
        b.iter(|| meter.observe(black_box(&activity)))
    });
}

criterion_group!(benches, bench_machine_ticks, bench_components);
criterion_main!(benches);
