//! Times the ablation studies at smoke scale so the regeneration paths
//! stay exercised under `cargo bench`. The substantive accuracy numbers
//! come from `repro ablate`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tdp_bench::{ablations, ExperimentConfig};

fn smoke_cfg() -> ExperimentConfig {
    ExperimentConfig {
        seed: 77,
        trace_seconds: 8,
        ramp_seconds: 1,
        out_dir: std::env::temp_dir().join("tdp-bench-criterion-ablate"),
    }
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let cfg = smoke_cfg();
    group.bench_function("memory_input_eq2_vs_eq3", |b| {
        b.iter(|| black_box(ablations::memory_input(&cfg)))
    });
    group.bench_function("cpu_halt_term", |b| {
        b.iter(|| black_box(ablations::cpu_halt_term(&cfg)))
    });
    group.bench_function("io_input_event", |b| {
        b.iter(|| black_box(ablations::io_input(&cfg)))
    });
    group.bench_function("model_form", |b| {
        b.iter(|| black_box(ablations::model_form(&cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
