//! Throughput benches for the allocation-free hot paths.
//!
//! Companion to `repro --bench-json` (which measures the end-to-end
//! pipeline): these isolate the per-call costs the buffer-reuse API
//! removed — `Machine::tick_into` vs the allocating `tick`, counter
//! reads into a reused `SampleSet`, and the pooled parallel capture.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tdp_bench::ExperimentConfig;
use tdp_counters::SampleSet;
use tdp_simsys::{Machine, MachineConfig, TickActivity};
use tdp_workloads::{Workload, WorkloadSet};

fn busy_machine() -> Machine {
    let mut machine = Machine::new(MachineConfig::default());
    WorkloadSet::new(Workload::SpecJbb, 8, 0).deploy(&mut machine);
    for _ in 0..2_000 {
        machine.tick();
    }
    machine
}

fn bench_tick(c: &mut Criterion) {
    let mut machine = busy_machine();
    c.bench_function("tick/allocating", |b| b.iter(|| black_box(machine.tick())));

    let mut machine = busy_machine();
    let mut activity = TickActivity::empty();
    c.bench_function("tick/into_reused_buffer", |b| {
        b.iter(|| {
            machine.tick_into(&mut activity);
            black_box(&activity);
        })
    });
}

fn bench_counter_read(c: &mut Criterion) {
    let mut machine = busy_machine();
    let mut set = SampleSet::empty();
    c.bench_function("counters/read_into_reused_set", |b| {
        b.iter(|| {
            machine.tick();
            machine.read_counters_into(&mut set);
            black_box(&set);
        })
    });
}

fn bench_capture(c: &mut Criterion) {
    // A deliberately tiny capture so the bench completes in seconds; the
    // full-size numbers live in BENCH_pipeline.json.
    let cfg = ExperimentConfig {
        seed: 7,
        trace_seconds: 2,
        ramp_seconds: 1,
        out_dir: std::env::temp_dir().join("tdp-bench-throughput"),
    };
    c.bench_function("capture/pooled_12_workloads_2s", |b| {
        b.iter(|| black_box(tdp_bench::capture_all(&cfg)))
    });
}

criterion_group!(benches, bench_tick, bench_counter_read, bench_capture);
criterion_main!(benches);
