//! Microbenchmarks of the estimation path — the paper's requirement is
//! "low computational cost" (§3.3.1): reading a handful of counters and
//! a few multiply-adds per window. These benches quantify that.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tdp_modeling::{fit_least_squares, FeatureMap};
use tdp_simsys::{Machine, MachineConfig};
use trickledown::{SystemPowerEstimator, SystemPowerModel, SystemSample};

fn sample_from_busy_machine() -> tdp_counters::SampleSet {
    let mut machine = Machine::new(MachineConfig::default());
    machine
        .os_mut()
        .spawn(Box::new(tdp_simsys::behavior::spin_loop_behavior(1.5)), 0);
    for _ in 0..1000 {
        machine.tick();
    }
    machine.read_counters()
}

fn bench_estimation_path(c: &mut Criterion) {
    let set = sample_from_busy_machine();
    let sample = SystemSample::from_sample_set(&set);
    let model = SystemPowerModel::paper();

    c.bench_function("input/extract_rates_from_sample_set", |b| {
        b.iter(|| SystemSample::from_sample_set(black_box(&set)))
    });

    c.bench_function("model/predict_all_subsystems", |b| {
        b.iter(|| black_box(&model).predict(black_box(&sample)))
    });

    let mut estimator = SystemPowerEstimator::new(model.clone());
    c.bench_function("estimator/push_one_window", |b| {
        b.iter(|| estimator.push(black_box(&sample)))
    });

    c.bench_function("model/json_roundtrip", |b| {
        b.iter(|| {
            let json = black_box(&model).to_json().unwrap();
            SystemPowerModel::from_json(&json).unwrap()
        })
    });
}

fn bench_fitting(c: &mut Criterion) {
    // A realistic calibration-sized problem: 400 windows, 5 coefficients.
    let map = FeatureMap::quadratic_all(2);
    let xs: Vec<Vec<f64>> = (0..400)
        .map(|i| vec![(i % 37) as f64 * 0.01, (i % 11) as f64 * 0.1])
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 21.6 + 3.0 * x[0] - 0.2 * x[0] * x[0] + 1.5 * x[1])
        .collect();
    c.bench_function("modeling/ols_fit_400x5", |b| {
        b.iter(|| fit_least_squares(black_box(&map), black_box(&xs), black_box(&ys)))
    });
}

criterion_group!(benches, bench_estimation_path, bench_fitting);
criterion_main!(benches);
