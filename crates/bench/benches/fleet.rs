//! Criterion benches for the fleet-scale batched estimation path.
//!
//! Companion to `repro --fleet N` (which measures the full three-way
//! comparison and writes `BENCH_fleet.json`): these isolate the
//! per-window costs at a fixed fleet size so regressions show up as
//! per-iteration deltas.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tdp_counters::{CounterSample, CpuId, InterruptSnapshot, PerfEvent, SampleSet};
use tdp_fleet::FleetEstimator;
use tdp_parallel::WorkerPool;
use trickledown::{SystemPowerEstimator, SystemPowerModel};

const MACHINES: usize = 256;

fn synthetic_fleet() -> Vec<SampleSet> {
    (0..MACHINES)
        .map(|m| {
            let mut state = (m as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let per_cpu = (0..4)
                .map(|cpu| {
                    let cycles: u64 = 3_000_000_000;
                    CounterSample::new(
                        CpuId::new(cpu),
                        0,
                        vec![
                            (PerfEvent::Cycles, cycles),
                            (PerfEvent::HaltedCycles, next() % cycles),
                            (PerfEvent::FetchedUops, next() % cycles),
                            (PerfEvent::L3LoadMisses, next() % 8_000_000),
                            (PerfEvent::BusTransactionsAll, next() % 1_000_000),
                            (PerfEvent::DmaOtherBusTransactions, next() % 100_000_000),
                            (PerfEvent::InterruptsTotal, 1_000 + next() % 60),
                            (PerfEvent::TimerInterrupts, 1_000),
                            (PerfEvent::DiskInterrupts, next() % 30),
                        ],
                    )
                })
                .collect();
            SampleSet {
                time_ms: 1000,
                window_ms: 1000,
                seq: 0,
                per_cpu,
                interrupts: InterruptSnapshot::default(),
            }
        })
        .collect()
}

fn bench_fleet_window(c: &mut Criterion) {
    let sets = synthetic_fleet();
    let model = SystemPowerModel::paper();

    let mut naive: Vec<SystemPowerEstimator> = (0..MACHINES)
        .map(|_| SystemPowerEstimator::with_capacity(model.clone(), 64))
        .collect();
    c.bench_function("fleet/naive_scalar_loop_256", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for (est, set) in naive.iter_mut().zip(&sets) {
                total += est.push_sample_set(set).total();
            }
            black_box(total)
        })
    });

    let mut serial = FleetEstimator::with_capacity(model.clone(), MACHINES);
    c.bench_function("fleet/batched_serial_256", |b| {
        b.iter(|| black_box(serial.process_window(&sets).fleet_total()))
    });

    let pool = WorkerPool::global();
    let mut pooled = FleetEstimator::with_capacity(model.clone(), MACHINES);
    c.bench_function("fleet/batched_pooled_256", |b| {
        b.iter(|| black_box(pooled.process_window_pooled(pool, &sets).fleet_total()))
    });
}

criterion_group!(benches, bench_fleet_window);
criterion_main!(benches);
