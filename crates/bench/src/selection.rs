//! The event-selection experiment: reproduce how the paper chose its
//! six events.
//!
//! "Though the initial selection of performance events for modeling is
//! dictated by an understanding of subsystem interactions … the final
//! selection of which event type(s) to use is determined by the average
//! error rate" (§3.3). For each subsystem this experiment fits every
//! candidate-event subset (size ≤ 2) under every form, validates on a
//! *different* workload, and reports the ranking — the paper's Equations
//! 1–5 inputs should win their columns.

use crate::{capture_workload, ExperimentConfig};
use std::fmt::Write as _;
use tdp_counters::Subsystem;
use tdp_modeling::ModelSelector;
use tdp_workloads::Workload;
use trickledown::testbed::Trace;
use trickledown::SystemSample;

/// The candidate events offered to the selector, with the scale factors
/// that keep their magnitudes comparable (pure presentation; the OLS
/// solver equilibrates internally anyway).
const CANDIDATES: &[&str] = &[
    "active_frac",
    "fetched_upc",
    "l3_load_misses",
    "bus_transactions",
    "dma_accesses",
    "uncacheable",
    "device_interrupts",
    "disk_interrupts",
    "tlb_misses",
];

fn extract(sample: &SystemSample) -> Vec<f64> {
    vec![
        sample.sum(|c| c.active_frac),
        sample.sum(|c| c.fetched_upc),
        sample.sum(|c| c.l3_load_misses) * 1e3,
        sample.sum(|c| c.bus_tx_per_mcycle),
        sample.sum(|c| c.dma_per_cycle) * 1e6,
        sample.sum(|c| c.uncacheable_per_cycle) * 1e9,
        sample.sum(|c| c.device_interrupts_per_cycle) * 1e9,
        sample.sum(|c| c.disk_interrupts_per_cycle) * 1e9,
        sample.sum(|c| c.tlb_per_cycle) * 1e6,
    ]
}

/// One subsystem's selection outcome.
#[derive(Debug, Clone)]
pub struct SelectionRow {
    /// The subsystem searched.
    pub subsystem: Subsystem,
    /// Winning input names.
    pub winner: Vec<String>,
    /// Winning form.
    pub form: String,
    /// Winner's validation error, %.
    pub error_pct: f64,
    /// The input the paper's final model uses, for comparison.
    pub paper_choice: &'static str,
}

/// Runs the selection search for every subsystem.
pub fn run(cfg: &ExperimentConfig) -> (Vec<SelectionRow>, String) {
    // Training and validation pairs per subsystem (train on the
    // high-variation workload the paper used; validate on a different
    // one so the ranking rewards generalisation).
    let specs: [(Subsystem, Workload, Workload, &str); 4] = [
        (
            Subsystem::Cpu,
            Workload::Gcc,
            Workload::Wupwise,
            "active_frac + fetched_upc (Eq 1)",
        ),
        (
            Subsystem::Memory,
            Workload::Mcf,
            Workload::Lucas,
            "bus_transactions (Eq 3)",
        ),
        (
            Subsystem::Disk,
            Workload::DiskLoad,
            Workload::Dbt2,
            "disk_interrupts + dma (Eq 4)",
        ),
        (
            Subsystem::Io,
            Workload::DiskLoad,
            Workload::Dbt2,
            "device_interrupts (Eq 5)",
        ),
    ];

    let rows_of =
        |t: &Trace| -> (Vec<Vec<f64>>, ()) { (t.inputs().into_iter().map(extract).collect(), ()) };

    let mut rows = Vec::new();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<38} {:>10} {:>10}   paper's choice",
        "subsys", "winning inputs", "form", "val err"
    );
    for (subsystem, train_w, valid_w, paper_choice) in specs {
        let train = capture_workload(cfg, train_w);
        let valid = capture_workload(cfg, valid_w);
        let (train_xs, ()) = rows_of(&train);
        let (valid_xs, ()) = rows_of(&valid);
        let selector = ModelSelector::new(CANDIDATES.iter().map(|s| s.to_string()).collect())
            .max_subset_size(2);
        let ranked = selector.search(
            &train_xs,
            &train.measured(subsystem),
            &valid_xs,
            &valid.measured(subsystem),
        );
        let Some(best) = ranked.first() else {
            let _ = writeln!(out, "{subsystem:<8} (no candidate fitted)");
            continue;
        };
        let _ = writeln!(
            out,
            "{:<8} {:<38} {:>10} {:>9.2}%   {}",
            subsystem.to_string(),
            best.input_names.join(" + "),
            best.form.to_string(),
            best.validation_error_pct,
            paper_choice
        );
        rows.push(SelectionRow {
            subsystem,
            winner: best.input_names.clone(),
            form: best.form.to_string(),
            error_pct: best.validation_error_pct,
            paper_choice,
        });
    }
    (rows, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_runs_and_picks_plausible_winners() {
        let cfg = ExperimentConfig {
            seed: 31,
            trace_seconds: 25,
            ramp_seconds: 2,
            out_dir: std::env::temp_dir().join("tdp-bench-selection"),
        };
        let (rows, rendered) = run(&cfg);
        assert_eq!(rows.len(), 4);
        assert!(rendered.contains("paper's choice"));
        // The CPU winner must involve at least one of Eq 1's inputs.
        let cpu = rows.iter().find(|r| r.subsystem == Subsystem::Cpu).unwrap();
        assert!(
            cpu.winner
                .iter()
                .any(|n| n == "active_frac" || n == "fetched_upc"),
            "cpu winner {:?}",
            cpu.winner
        );
        // The I/O winner must involve an interrupt or I/O-side event.
        let io = rows.iter().find(|r| r.subsystem == Subsystem::Io).unwrap();
        assert!(
            io.winner
                .iter()
                .any(|n| n.contains("interrupt") || n.contains("dma") || n.contains("uncacheable")),
            "io winner {:?}",
            io.winner
        );
    }
}
