//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each ablation swaps one modeling decision and reports Equation-6
//! error across validation workloads, quantifying *why* the paper's
//! choices are the right ones on this testbed:
//!
//! 1. memory input: L3 misses (Eq 2) vs bus transactions (Eq 3);
//! 2. the halted-cycle term in the CPU model;
//! 3. the I/O model's event: interrupts vs DMA vs uncacheable accesses;
//! 4. linear vs quadratic model forms;
//! 5. counter sampling period.

use crate::{capture_workload, ExperimentConfig};

/// A candidate feature extractor: system sample → feature vector.
type Extract<'a> = &'a dyn Fn(&trickledown::SystemSample) -> Vec<f64>;
use std::fmt::Write as _;
use tdp_counters::{SamplerConfig, Subsystem};
use tdp_modeling::metrics::average_error;
use tdp_modeling::{fit_least_squares_ridge, FeatureMap, RegressionModel};
use tdp_workloads::{Workload, WorkloadSet};
use trickledown::testbed::{Testbed, TestbedConfig, Trace};
use trickledown::{MemoryInput, MemoryPowerModel, SubsystemPowerModel as _};

/// Fits `extract`-derived features against one subsystem's measured
/// power on `train`, then scores Equation-6 error on each validation
/// trace. Returns `(per-trace errors, train error)`.
fn fit_and_score(
    map: &FeatureMap,
    extract: &dyn Fn(&trickledown::SystemSample) -> Vec<f64>,
    subsystem: Subsystem,
    train: &Trace,
    validate: &[&Trace],
) -> Option<(Vec<f64>, f64)> {
    let train_xs: Vec<Vec<f64>> = train.inputs().into_iter().map(extract).collect();
    let train_ys = train.measured(subsystem);
    let model: RegressionModel = fit_least_squares_ridge(map, &train_xs, &train_ys, 1e-9).ok()?;
    let score = |t: &Trace| {
        let xs: Vec<Vec<f64>> = t.inputs().into_iter().map(extract).collect();
        let modeled: Vec<f64> = xs.iter().map(|x| model.predict(x)).collect();
        average_error(&modeled, &t.measured(subsystem))
    };
    let errors = validate.iter().map(|t| score(t)).collect();
    Some((errors, score(train)))
}

/// Ablation 1: Equation 2 vs Equation 3 across the full workload set.
pub fn memory_input(cfg: &ExperimentConfig) -> String {
    let mcf = capture_workload(cfg, Workload::Mcf);
    let mesa = capture_workload(cfg, Workload::Mesa);
    let validation: Vec<Trace> = [Workload::Gcc, Workload::Lucas, Workload::SpecJbb]
        .iter()
        .map(|&w| capture_workload(cfg, w))
        .collect();

    let mut out =
        String::from("ablation: memory model input (Eq 2 cache misses vs Eq 3 bus transactions)\n");
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "model", "mcf", "gcc", "lucas", "specjbb"
    );
    for (label, input, train) in [
        ("l3_misses (Eq 2)", MemoryInput::L3LoadMisses, &mesa),
        ("bus_txns  (Eq 3)", MemoryInput::BusTransactions, &mcf),
    ] {
        let Ok(model) =
            MemoryPowerModel::fit(input, &train.inputs(), &train.measured(Subsystem::Memory))
        else {
            let _ = writeln!(out, "{label:<22} (fit failed)");
            continue;
        };
        let score = |t: &Trace| {
            let modeled: Vec<f64> = t.inputs().into_iter().map(|s| model.predict(s)).collect();
            average_error(&modeled, &t.measured(Subsystem::Memory))
        };
        let _ = writeln!(
            out,
            "{label:<22} {:>9.2}% {:>9.2}% {:>9.2}% {:>9.2}%",
            score(&mcf),
            score(&validation[0]),
            score(&validation[1]),
            score(&validation[2]),
        );
    }
    out
}

/// Ablation 2: the CPU model with and without the halted-cycle
/// (`PercentActive`) term, judged on a workload that idles a lot.
pub fn cpu_halt_term(cfg: &ExperimentConfig) -> String {
    let train = capture_workload(cfg, Workload::Gcc);
    let dbt2 = capture_workload(cfg, Workload::Dbt2);
    let idle = capture_workload(cfg, Workload::Idle);
    let validate = [&dbt2, &idle];

    let with_halt: &dyn Fn(&trickledown::SystemSample) -> Vec<f64> =
        &|s| vec![s.sum(|c| c.active_frac), s.sum(|c| c.fetched_upc)];
    let without_halt: &dyn Fn(&trickledown::SystemSample) -> Vec<f64> =
        &|s| vec![s.sum(|c| c.fetched_upc)];

    let mut out = String::from("ablation: halted-cycle term in the CPU model\n");
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>10} {:>10}",
        "model", "gcc(train)", "dbt-2", "idle"
    );
    for (label, dim, extract) in [
        ("active+uops (Eq 1)", 2usize, with_halt),
        ("uops only", 1, without_halt),
    ] {
        let Some((errors, train_err)) = fit_and_score(
            &FeatureMap::linear(dim),
            extract,
            Subsystem::Cpu,
            &train,
            &validate,
        ) else {
            let _ = writeln!(out, "{label:<22} (fit failed)");
            continue;
        };
        let _ = writeln!(
            out,
            "{label:<22} {:>9.2}% {:>9.2}% {:>9.2}%",
            train_err, errors[0], errors[1]
        );
    }
    out
}

/// Ablation 3: which trickle-down event predicts I/O power.
pub fn io_input(cfg: &ExperimentConfig) -> String {
    let train = capture_workload(cfg, Workload::DiskLoad);
    let dbt2 = capture_workload(cfg, Workload::Dbt2);
    let validate = [&dbt2];

    let candidates: [(&str, Extract<'_>); 3] = [
        ("interrupts (Eq 5)", &|s| {
            vec![s.sum(|c| c.device_interrupts_per_cycle)]
        }),
        ("dma accesses", &|s| vec![s.sum(|c| c.dma_per_cycle)]),
        ("uncacheable", &|s| vec![s.sum(|c| c.uncacheable_per_cycle)]),
    ];

    let mut out = String::from("ablation: I/O model input event\n");
    let _ = writeln!(
        out,
        "{:<22} {:>14} {:>10}",
        "input", "diskload(train)", "dbt-2"
    );
    for (label, extract) in candidates {
        let Some((errors, train_err)) = fit_and_score(
            &FeatureMap::quadratic_single(1, 0),
            extract,
            Subsystem::Io,
            &train,
            &validate,
        ) else {
            let _ = writeln!(out, "{label:<22} (fit failed)");
            continue;
        };
        let _ = writeln!(out, "{label:<22} {:>13.2}% {:>9.2}%", train_err, errors[0]);
    }
    out
}

/// Ablation 4: linear vs quadratic forms for the memory model.
pub fn model_form(cfg: &ExperimentConfig) -> String {
    let train = capture_workload(cfg, Workload::Mcf);
    let lucas = capture_workload(cfg, Workload::Lucas);
    let gcc = capture_workload(cfg, Workload::Gcc);
    let validate = [&lucas, &gcc];
    let extract: &dyn Fn(&trickledown::SystemSample) -> Vec<f64> =
        &|s| vec![s.sum(|c| c.bus_tx_per_mcycle)];

    let mut out = String::from("ablation: model form for the memory subsystem\n");
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>10} {:>10}",
        "form", "mcf(train)", "lucas", "gcc"
    );
    for (label, map) in [
        ("linear", FeatureMap::linear(1)),
        ("quadratic (paper)", FeatureMap::quadratic_single(1, 0)),
    ] {
        let Some((errors, train_err)) =
            fit_and_score(&map, extract, Subsystem::Memory, &train, &validate)
        else {
            let _ = writeln!(out, "{label:<22} (fit failed)");
            continue;
        };
        let _ = writeln!(
            out,
            "{label:<22} {:>9.2}% {:>9.2}% {:>9.2}%",
            train_err, errors[0], errors[1]
        );
    }
    out
}

/// Ablation 5: counter sampling period. The paper samples at 1 Hz;
/// faster sampling sees more variance (less averaging), slower sampling
/// hides phases.
pub fn sampling_period(cfg: &ExperimentConfig) -> String {
    let mut out = String::from("ablation: counter sampling period (CPU model, gcc ramp)\n");
    let _ = writeln!(out, "{:<12} {:>12} {:>10}", "period", "windows", "error");
    for period_ms in [250u64, 500, 1000, 2000, 4000] {
        let mut tb_cfg = TestbedConfig::with_seed(cfg.seed ^ period_ms);
        tb_cfg.sampler = SamplerConfig {
            period_ms,
            max_jitter_ms: 3,
        };
        let mut bed = Testbed::new(tb_cfg);
        let set = WorkloadSet::new(Workload::Gcc, 8, cfg.ramp_seconds * 1000).with_delay(2_000);
        bed.deploy(set);
        let seconds = cfg.seconds_for(&set);
        let windows = seconds * 1000 / period_ms;
        let trace = bed.run_seconds(Workload::Gcc, windows);
        let Ok(model) =
            trickledown::CpuPowerModel::fit(&trace.inputs(), &trace.measured(Subsystem::Cpu))
        else {
            let _ = writeln!(out, "{period_ms:<12} (fit failed)");
            continue;
        };
        let modeled: Vec<f64> = trace
            .inputs()
            .into_iter()
            .map(|s| model.predict(s))
            .collect();
        let err = average_error(&modeled, &trace.measured(Subsystem::Cpu));
        let _ = writeln!(
            out,
            "{:<12} {:>12} {:>9.2}%",
            format!("{period_ms} ms"),
            trace.len(),
            err
        );
    }
    out
}

/// Runs every ablation and concatenates the reports.
pub fn run_all(cfg: &ExperimentConfig) -> String {
    [
        memory_input(cfg),
        cpu_halt_term(cfg),
        io_input(cfg),
        model_form(cfg),
        sampling_period(cfg),
    ]
    .join("\n")
}
