//! Figure experiments (the paper's Figures 2–7).
//!
//! Each figure is regenerated as a CSV time series plus a one-line
//! summary of the property the paper's figure demonstrates.

use crate::{write_csv, ExperimentConfig};
use std::path::PathBuf;
use tdp_counters::{PerfEvent, Subsystem};
use tdp_modeling::metrics::{
    average_error, average_error_with_offset, average_error_with_offset_deadband,
};
use tdp_workloads::{Workload, WorkloadSet};
use trickledown::testbed::{capture, Trace};
use trickledown::{MemoryInput, MemoryPowerModel, SubsystemPowerModel, SystemPowerModel};

/// Outcome of one figure regeneration.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Figure id, e.g. `"fig2"`.
    pub name: &'static str,
    /// Where the series CSV was written.
    pub csv_path: PathBuf,
    /// One-line result summary.
    pub summary: String,
}

fn ramped_set(cfg: &ExperimentConfig, w: Workload, instances: usize) -> WorkloadSet {
    WorkloadSet::new(w, instances, cfg.ramp_seconds * 1000)
        .with_delay((cfg.ramp_seconds * 500).max(2_000))
}

fn capture_ramp(cfg: &ExperimentConfig, w: Workload, salt: u64) -> Trace {
    let set = ramped_set(cfg, w, 8);
    capture(set, cfg.seconds_for(&set), cfg.seed ^ salt)
}

fn measured_vs_modeled(
    cfg: &ExperimentConfig,
    name: &'static str,
    trace: &Trace,
    subsystem: Subsystem,
    predict: impl Fn(&trickledown::SystemSample) -> f64,
) -> (PathBuf, Vec<f64>, Vec<f64>) {
    let measured = trace.measured(subsystem);
    let modeled: Vec<f64> = trace.records.iter().map(|r| predict(&r.input)).collect();
    let rows = trace
        .records
        .iter()
        .zip(&measured)
        .zip(&modeled)
        .map(|((r, &m), &p)| vec![r.measured.time_ms as f64 / 1000.0, m, p]);
    let path = write_csv(
        cfg,
        &format!("{name}.csv"),
        "seconds,measured_w,modeled_w",
        rows,
    );
    (path, measured, modeled)
}

/// Figure 2: four-CPU measured vs modeled power under 8 × gcc with
/// staggered starts (the CPU model's training shape; paper: 3.1% error).
pub fn fig2(cfg: &ExperimentConfig, model: &SystemPowerModel) -> FigureResult {
    let trace = capture_ramp(cfg, Workload::Gcc, 0x0f2);
    let (csv_path, measured, modeled) =
        measured_vs_modeled(cfg, "fig2_cpu_gcc", &trace, Subsystem::Cpu, |s| {
            model.cpu.predict(s)
        });
    let err = average_error(&modeled, &measured);
    FigureResult {
        name: "fig2",
        csv_path,
        summary: format!("4-CPU power, 8x gcc staggered: avg error {err:.2}% (paper: 3.1%)"),
    }
}

/// Figure 3: memory power under a mesa instance ramp, modeled from L3
/// misses (Equation 2, trained on the same trace; paper: ~1% error).
pub fn fig3(cfg: &ExperimentConfig) -> FigureResult {
    let trace = capture_ramp(cfg, Workload::Mesa, 0x0f3);
    let model = MemoryPowerModel::fit(
        MemoryInput::L3LoadMisses,
        &trace.inputs(),
        &trace.measured(Subsystem::Memory),
    )
    .expect("mesa ramp provides L3-miss variation");
    let (csv_path, measured, modeled) =
        measured_vs_modeled(cfg, "fig3_memory_l3_mesa", &trace, Subsystem::Memory, |s| {
            model.predict(s)
        });
    let err = average_error(&modeled, &measured);
    FigureResult {
        name: "fig3",
        csv_path,
        summary: format!(
            "memory power via L3 misses on mesa ramp: avg error {err:.2}% (paper: ~1%)"
        ),
    }
}

/// Figures 4 and 5 share one mcf instance-ramp trace.
///
/// * **Figure 4** plots prefetch vs non-prefetch bus transactions and
///   locates where the cache-miss (Equation 2) model starts failing.
/// * **Figure 5** shows the bus-transaction (Equation 3) model holding
///   on the same trace (paper: 2.2% error).
pub fn fig4_fig5(cfg: &ExperimentConfig) -> (FigureResult, FigureResult) {
    let trace = capture_ramp(cfg, Workload::Mcf, 0x0f4);
    let inputs = trace.inputs();
    let measured = trace.measured(Subsystem::Memory);
    let half = trace.records.len() / 2;

    // The paper trains the cache-miss model on mesa's well-behaved
    // traffic (Figure 3) and then watches it fail on mcf, where the
    // prefetcher hides a growing share of the demand misses from the
    // counters while their lines still cross the bus.
    let mesa = capture_ramp(cfg, Workload::Mesa, 0x0f3);
    let l3 = MemoryPowerModel::fit(
        MemoryInput::L3LoadMisses,
        &mesa.inputs(),
        &mesa.measured(Subsystem::Memory),
    )
    .expect("mesa ramp has L3-miss variation");
    let bus = MemoryPowerModel::fit(MemoryInput::BusTransactions, &inputs, &measured)
        .expect("mcf ramp has bus-transaction variation");

    // Figure 4 series: prefetch and non-prefetch bus transactions per
    // second, plus the L3 model's running error.
    let mut fail_at_s = None;
    let fig4_rows: Vec<Vec<f64>> = trace
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let prefetch: u64 = r.raw.total(PerfEvent::PrefetchBusTransactions).unwrap_or(0);
            let all: u64 = r.raw.total(PerfEvent::BusTransactionsAll).unwrap_or(0);
            let modeled = l3.predict(&r.input);
            let err = (modeled - measured[i]).abs() / measured[i] * 100.0;
            if err > 10.0 && fail_at_s.is_none() && i > 5 {
                fail_at_s = Some(r.measured.time_ms / 1000);
            }
            vec![
                r.measured.time_ms as f64 / 1000.0,
                (all - prefetch) as f64,
                prefetch as f64,
                err,
            ]
        })
        .collect();
    let fig4_path = write_csv(
        cfg,
        "fig4_bus_transactions_mcf.csv",
        "seconds,nonprefetch_bus_txns,prefetch_bus_txns,l3_model_error_pct",
        fig4_rows,
    );
    let l3_modeled: Vec<f64> = inputs.iter().map(|&s| l3.predict(s)).collect();
    let l3_err_late = average_error(&l3_modeled[half..], &measured[half..]);
    let fig4 = FigureResult {
        name: "fig4",
        csv_path: fig4_path,
        summary: match fail_at_s {
            Some(t) => format!(
                "cache-miss model fails at t≈{t}s as prefetch traffic grows \
                 (late-ramp error {l3_err_late:.1}%)"
            ),
            None => format!(
                "cache-miss model late-ramp error {l3_err_late:.1}% \
                 (no >10% failure point found)"
            ),
        },
    };

    let (fig5_path, m5, p5) =
        measured_vs_modeled(cfg, "fig5_memory_bus_mcf", &trace, Subsystem::Memory, |s| {
            bus.predict(s)
        });
    let err5 = average_error(&p5, &m5);
    let fig5 = FigureResult {
        name: "fig5",
        csv_path: fig5_path,
        summary: format!(
            "memory power via bus transactions on mcf: avg error {err5:.2}% (paper: 2.2%)"
        ),
    };
    (fig4, fig5)
}

/// Figures 6 and 7 share one DiskLoad trace.
///
/// * **Figure 6**: disk power via the DMA+interrupt model (paper: 1.75%
///   error after subtracting the 21.6 W DC offset).
/// * **Figure 7**: I/O power via the interrupt model (paper: <1% raw,
///   32% DC-adjusted).
pub fn fig6_fig7(cfg: &ExperimentConfig) -> (FigureResult, FigureResult) {
    let set = ramped_set(cfg, Workload::DiskLoad, 4);
    let trace = capture(set, cfg.seconds_for(&set).max(60), cfg.seed ^ 0x0f6);
    let inputs = trace.inputs();

    let disk = trickledown::DiskPowerModel::fit(&inputs, &trace.measured(Subsystem::Disk))
        .expect("DiskLoad exercises the disks");
    let io = trickledown::IoPowerModel::fit(&inputs, &trace.measured(Subsystem::Io))
        .expect("DiskLoad exercises the I/O chips");

    let (p6, m6, mod6) =
        measured_vs_modeled(cfg, "fig6_disk_diskload", &trace, Subsystem::Disk, |s| {
            disk.predict(s)
        });
    // Relative error after removing the 21.6 W DC term, over samples
    // whose dynamic power clears the sensor noise floor (~0.1 W).
    let err6 = average_error_with_offset_deadband(&mod6, &m6, disk.dc_offset(), 0.15);
    let fig6 = FigureResult {
        name: "fig6",
        csv_path: p6,
        summary: format!(
            "disk power via DMA+interrupts on DiskLoad: DC-adjusted avg error \
             {err6:.2}% (paper: 1.75%)"
        ),
    };

    let (p7, m7, mod7) = measured_vs_modeled(cfg, "fig7_io_diskload", &trace, Subsystem::Io, |s| {
        io.predict(s)
    });
    let err7 = average_error(&mod7, &m7);
    let err7_adj = average_error_with_offset(&mod7, &m7, io.dc_offset());
    let fig7 = FigureResult {
        name: "fig7",
        csv_path: p7,
        summary: format!(
            "I/O power via interrupts on DiskLoad: avg error {err7:.2}% raw \
             (paper: <1%), {err7_adj:.1}% DC-adjusted (paper: 32%)"
        ),
    };
    (fig6, fig7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(tag: &str) -> ExperimentConfig {
        ExperimentConfig {
            seed: 99,
            trace_seconds: 20,
            ramp_seconds: 2,
            out_dir: std::env::temp_dir().join(format!("tdp-bench-fig-{tag}")),
        }
    }

    #[test]
    fn fig3_trains_and_reports() {
        let r = fig3(&tiny_cfg("f3"));
        assert!(r.csv_path.exists());
        assert!(r.summary.contains("avg error"));
    }

    #[test]
    fn fig6_fig7_share_trace_and_report() {
        let (f6, f7) = fig6_fig7(&tiny_cfg("f67"));
        assert!(f6.csv_path.exists());
        assert!(f7.csv_path.exists());
        assert!(f6.summary.contains("DC-adjusted"));
        assert!(f7.summary.contains("raw"));
    }
}
