//! Fleet-scale estimation benchmark (`repro --fleet N`).
//!
//! Measures three ways of estimating power for N machines per window on
//! *identical* synthetic counter data:
//!
//! * **naive** — one scalar [`trickledown::SystemPowerEstimator`] per
//!   machine, a `push_sample_set` loop (the obvious pre-`tdp-fleet`
//!   approach);
//! * **batched** — [`tdp_fleet::FleetEstimator`]'s serial SoA path;
//! * **pooled** — the same, sharded across the persistent
//!   [`tdp_parallel::WorkerPool`] (bit-identical to batched by
//!   contract, asserted here on the first window).
//!
//! Results land in `BENCH_fleet.json`: machines×windows per second for
//! each path, ns per machine-estimate, the speedups over naive, and
//! peak RSS.

use crate::pipeline::{peak_rss_kb, StageRate};
use crate::ExperimentConfig;
use serde::Serialize;
use std::time::Instant;
use tdp_counters::{CounterSample, CpuId, InterruptSnapshot, PerfEvent, SampleSet};
use tdp_fleet::FleetEstimator;
use tdp_parallel::WorkerPool;
use trickledown::{SystemPowerEstimator, SystemPowerModel};

/// CPUs per simulated machine (the paper's 4-way Xeon server).
const CPUS_PER_MACHINE: usize = 4;

/// Scalar-estimator history bound for the naive path: enough for a
/// moving average, far below the 3600 default so the comparison is not
/// dominated by ring memory.
const NAIVE_HISTORY: usize = 64;

/// Full fleet benchmark report.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// Machines per window.
    pub n_machines: usize,
    /// Windows processed per path.
    pub windows: u64,
    /// Worker-pool concurrency used by the pooled path.
    pub workers: usize,
    /// Naive path: units are machine-windows.
    pub naive: StageRate,
    /// Batched serial path.
    pub batched: StageRate,
    /// Batched path sharded over the persistent pool.
    pub pooled: StageRate,
    /// Nanoseconds per machine-estimate, naive path.
    pub naive_ns_per_estimate: f64,
    /// Nanoseconds per machine-estimate, batched serial path.
    pub batched_ns_per_estimate: f64,
    /// Nanoseconds per machine-estimate, pooled path.
    pub pooled_ns_per_estimate: f64,
    /// Batched-serial speedup over naive (machines×windows/sec ratio).
    pub speedup_batched: f64,
    /// Pooled speedup over naive — the headline number.
    pub speedup_pooled: f64,
    /// Peak resident set (VmHWM), kilobytes; 0 when unavailable.
    pub peak_rss_kb: u64,
    /// Kernel dispatch flavour the run used (`scalar` / `wide` — see
    /// [`tdp_simd::Dispatch::active`]).
    pub simd: &'static str,
}

/// Deterministic synthetic counter read for one machine-window:
/// realistic magnitudes (≈3 GHz × 1 s windows), every event-rate input
/// exercised, varying by machine and window so neither path can
/// special-case repeated values. Shared with the wire codec benchmark
/// (`repro --wire N`) so both report on identical data.
pub fn synthetic_set(machine: usize, window: u64) -> SampleSet {
    let mut set = SampleSet::empty();
    synthetic_set_into(&mut set, machine, window);
    set
}

/// In-place flavour of [`synthetic_set`]: regenerates the same draws
/// into an existing set, reusing its `per_cpu` arena (and each sample's
/// inline count store) instead of reallocating. The timed harness loops
/// regenerate a whole fleet's sets every window; with thousands of
/// machines that is tens of thousands of short-lived heap allocations
/// per window — pure generator overhead that pollutes the allocator and
/// cache state the timed paths then run under, and that a production
/// ingester (fed fresh network buffers, not regenerated sample structs)
/// never pays.
pub fn synthetic_set_into(out: &mut SampleSet, machine: usize, window: u64) {
    let mut state = (machine as u64 + 1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(window.wrapping_mul(0xD1B5_4A32_D192_ED03))
        | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // Machine-wide base draws with small per-CPU jitter: sibling CPUs
    // of one server under one workload track each other closely (the
    // paper's 4-way Xeon), which is also the locality the wire codec's
    // CPU-over-CPU delta encoding is designed around.
    let cycles: u64 = 3_000_000_000;
    // Headroom keeps base + jitter below `cycles`, so active time
    // never goes negative on any CPU.
    let halted = next() % (cycles - cycles / 64);
    let active = cycles - halted;
    let fetched = next() % (2 * active + 1);
    let l3 = next() % 8_000_000;
    let bus = next() % 1_000_000;
    let dma = next() % 100_000_000;
    // Interrupt rates stay inside the paper's operating range (tens
    // per second): Equations 4–5 are downward parabolas and blow up
    // far outside it.
    let ints = 1_000 + next() % 60;
    let disk = next() % 30;
    out.per_cpu.truncate(CPUS_PER_MACHINE);
    for cpu in 0..CPUS_PER_MACHINE {
        let mut jitter = |base: u64| base + next() % (base / 128 + 2);
        let pairs = [
            (PerfEvent::Cycles, cycles),
            (PerfEvent::HaltedCycles, jitter(halted)),
            (PerfEvent::FetchedUops, jitter(fetched)),
            (PerfEvent::L3LoadMisses, jitter(l3)),
            (PerfEvent::BusTransactionsAll, jitter(bus)),
            (PerfEvent::DmaOtherBusTransactions, jitter(dma)),
            (PerfEvent::InterruptsTotal, jitter(ints)),
            (PerfEvent::TimerInterrupts, 1_000),
            (PerfEvent::DiskInterrupts, jitter(disk)),
        ];
        let id = CpuId::new(cpu as u8);
        match out.per_cpu.get_mut(cpu) {
            Some(sample) => sample.refill(id, window, pairs),
            None => out
                .per_cpu
                .push(CounterSample::new(id, window, pairs.to_vec())),
        }
    }
    out.time_ms = window.wrapping_add(1).wrapping_mul(1000);
    out.window_ms = 1000;
    out.seq = window;
    out.interrupts = InterruptSnapshot::default();
}

/// Refills a fleet's worth of sets for `window`, growing the vector on
/// the first call and reusing every allocation afterwards.
pub(crate) fn refill_sets(sets: &mut Vec<SampleSet>, n_machines: usize, window: u64) {
    sets.resize_with(n_machines, SampleSet::empty);
    for (m, set) in sets.iter_mut().enumerate() {
        synthetic_set_into(set, m, window);
    }
}

/// Runs all three paths over the same windows and assembles the report.
pub fn run(cfg: &ExperimentConfig, n_machines: usize) -> FleetReport {
    let n_machines = n_machines.max(1);
    // Enough windows that per-window timing noise (scheduler
    // preemption on small shared hosts) averages out, capped so huge
    // fleets still finish promptly.
    let windows: u64 = (1_048_576 / n_machines as u64).clamp(16, 1024);
    let model = SystemPowerModel::paper();
    let pool = WorkerPool::global();

    let mut naive: Vec<SystemPowerEstimator> = (0..n_machines)
        .map(|_| SystemPowerEstimator::with_capacity(model.clone(), NAIVE_HISTORY))
        .collect();
    let mut serial = FleetEstimator::with_capacity(model.clone(), n_machines);
    let mut pooled = FleetEstimator::with_capacity(model.clone(), n_machines);

    let mut sets: Vec<SampleSet> = Vec::with_capacity(n_machines);
    let (mut naive_secs, mut batched_secs, mut pooled_secs) = (0.0f64, 0.0, 0.0);

    // Warm-up window: fault in buffers and reach the allocation-free
    // steady state before timing starts (seeded off the seed so the
    // measured windows never repeat it).
    for warmup in [true, false] {
        let measured_windows = if warmup { 1 } else { windows };
        for w in 0..measured_windows {
            let window = if warmup { u64::MAX } else { w ^ cfg.seed };
            refill_sets(&mut sets, n_machines, window);

            // Rotate the order the three paths run in so cache-warmth
            // position bias (whoever runs right after `sets` is
            // regenerated sees it hottest) averages out over windows.
            let mut naive_total = 0.0;
            let (mut naive_elapsed, mut batched_elapsed, mut pooled_elapsed) = (0.0f64, 0.0, 0.0);
            for step in 0..3 {
                match (step + w as usize) % 3 {
                    0 => {
                        let start = Instant::now();
                        naive_total = 0.0;
                        for (est, set) in naive.iter_mut().zip(&sets) {
                            naive_total += est.push_sample_set(set).total();
                        }
                        naive_elapsed = start.elapsed().as_secs_f64();
                        std::hint::black_box(naive_total);
                    }
                    1 => {
                        let start = Instant::now();
                        let serial_est = serial.process_window(&sets);
                        batched_elapsed = start.elapsed().as_secs_f64();
                        std::hint::black_box(serial_est.fleet_total());
                    }
                    _ => {
                        let start = Instant::now();
                        let pooled_est = pooled.process_window_pooled(pool, &sets);
                        pooled_elapsed = start.elapsed().as_secs_f64();
                        std::hint::black_box(pooled_est.fleet_total());
                    }
                }
            }

            if warmup {
                // Determinism spot-check on untimed data: pooled must be
                // bit-identical to serial, and both within float noise of
                // the scalar estimators.
                let serial_est = serial.estimates();
                let pooled_est = pooled.estimates();
                assert_eq!(serial_est.total(), pooled_est.total());
                assert_eq!(serial_est.cpu(), pooled_est.cpu());
                assert_eq!(serial_est.disk(), pooled_est.disk());
                let batched_fleet_total = serial_est.fleet_total();
                assert!(
                    (naive_total - batched_fleet_total).abs()
                        < 1e-6 * batched_fleet_total.abs().max(1.0),
                    "batched disagrees with scalar: {naive_total} vs {batched_fleet_total}"
                );
            } else {
                naive_secs += naive_elapsed;
                batched_secs += batched_elapsed;
                pooled_secs += pooled_elapsed;
            }
        }
    }

    let units = windows * n_machines as u64;
    let naive_rate = StageRate::new(units, naive_secs);
    let batched_rate = StageRate::new(units, batched_secs);
    let pooled_rate = StageRate::new(units, pooled_secs);
    FleetReport {
        n_machines,
        windows,
        workers: pool.workers(),
        naive_ns_per_estimate: naive_secs * 1e9 / units as f64,
        batched_ns_per_estimate: batched_secs * 1e9 / units as f64,
        pooled_ns_per_estimate: pooled_secs * 1e9 / units as f64,
        speedup_batched: batched_rate.per_sec / naive_rate.per_sec,
        speedup_pooled: pooled_rate.per_sec / naive_rate.per_sec,
        naive: naive_rate,
        batched: batched_rate,
        pooled: pooled_rate,
        peak_rss_kb: peak_rss_kb(),
        simd: tdp_simd::Dispatch::active().label(),
    }
}

/// Runs the benchmark, writes `BENCH_fleet.json` under the output
/// directory and returns the rendered JSON.
///
/// # Panics
///
/// Panics if the output directory is unwritable (consistent with the
/// rest of the repro harness).
pub fn run_and_write(cfg: &ExperimentConfig, n_machines: usize) -> String {
    let report = run(cfg, n_machines);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = cfg.out_dir.join("BENCH_fleet.json");
    std::fs::write(&path, &json).expect("write BENCH_fleet.json");
    eprintln!("bench: wrote {}", path.display());
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_sets_are_deterministic_and_varied() {
        let a = synthetic_set(3, 7);
        let b = synthetic_set(3, 7);
        assert_eq!(a, b);
        assert_ne!(a, synthetic_set(4, 7), "varies by machine");
        assert_ne!(a, synthetic_set(3, 8), "varies by window");
        assert_eq!(a.per_cpu.len(), CPUS_PER_MACHINE);
    }

    #[test]
    fn refill_matches_fresh_generation() {
        // Reusing a set's allocations must produce the exact sample a
        // fresh build would — the harness's bit-identity asserts across
        // codec paths all assume the generator is state-free.
        let mut reused = synthetic_set(0, 0);
        for (machine, window) in [(5usize, 11u64), (0, 3), (5, 11), (7, u64::MAX)] {
            synthetic_set_into(&mut reused, machine, window);
            assert_eq!(reused, synthetic_set(machine, window));
        }

        let mut sets = Vec::new();
        refill_sets(&mut sets, 3, 9);
        let caps: Vec<_> = sets.iter().map(|s| s.per_cpu.capacity()).collect();
        refill_sets(&mut sets, 3, 10);
        for (m, set) in sets.iter().enumerate() {
            assert_eq!(*set, synthetic_set(m, 10));
            assert_eq!(set.per_cpu.capacity(), caps[m], "arena was reallocated");
        }
    }

    #[test]
    fn small_fleet_report_is_consistent() {
        let cfg = ExperimentConfig {
            out_dir: std::env::temp_dir().join("tdp-fleet-bench-test"),
            ..ExperimentConfig::quick()
        };
        let r = run(&cfg, 8);
        assert_eq!(r.n_machines, 8);
        assert_eq!(r.naive.units, r.windows * 8);
        assert!(r.naive.per_sec > 0.0);
        assert!(r.speedup_batched > 0.0);
        assert!((r.speedup_pooled - r.pooled.per_sec / r.naive.per_sec).abs() < 1e-12);
    }
}
