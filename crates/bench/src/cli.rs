//! Argument parsing for the `repro` binary.
//!
//! Split out of `src/bin/repro.rs` so validation — flag syntax, count
//! bounds, experiment-name checking and `all` expansion — is unit
//! testable without spawning the process. The binary's `main` reduces
//! to: parse, print on error, dispatch.

use crate::ExperimentConfig;
use std::collections::BTreeSet;
use tdp_wire::FrameKind;

/// One-line usage string, printed with every argument error.
pub const USAGE: &str = "usage: repro [--quick] [--markdown] [--bench-json] [--fleet N] [--wire N] \
    [--frame planar|varint] [--faults SEED] [--anomaly] [--seed N] [--out DIR] \
    <table1|table2|table3|table4|fig2|fig3|fig4|fig5|fig6|fig7|coefficients|shape|ablate|selection|all>...";

/// Every experiment name the binary knows, excluding `all`.
pub const EXPERIMENTS: [&str; 14] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "coefficients",
    "shape",
    "ablate",
    "selection",
];

/// Experiments `all` expands to (everything except the slow ablation
/// and selection sweeps, which must be requested by name).
const ALL_EXPANSION: [&str; 12] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "coefficients",
    "shape",
];

/// A fully validated command line.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Experiment configuration (seed, trace lengths, output dir).
    pub cfg: ExperimentConfig,
    /// Validated experiment names, `all` already expanded.
    pub wanted: BTreeSet<String>,
    /// Render tables as markdown.
    pub markdown: bool,
    /// Run the pipeline throughput benchmark (`BENCH.json`).
    pub bench_json: bool,
    /// Fleet-estimation benchmark machine count (`BENCH_fleet.json`).
    pub fleet: Option<usize>,
    /// Wire-codec benchmark machine count (`BENCH_wire.json`).
    pub wire: Option<usize>,
    /// Sample-frame encoding the wire benchmark exercises as its
    /// selected format (`--frame planar|varint`; the report always
    /// carries A/B numbers for both).
    pub frame: FrameKind,
    /// Fault-injection seed: turns `--wire N` into the chaos harness
    /// (`CHAOS.json`) — a seeded `FaultPlan` batters the stream while
    /// the ingest pipeline must degrade gracefully.
    pub faults: Option<u64>,
    /// Run the adaptive-sampling phase of the wire benchmark: the
    /// closed anomaly→decimation loop plus the decimated-ingest A/B
    /// (`anomaly_*` / `decimation_*` fields in `BENCH_wire.json`), or
    /// the detector-under-fire sub-run when combined with `--faults`
    /// (`CHAOS.json`).
    pub anomaly: bool,
    /// `--help` was requested: print usage, exit success.
    pub help: bool,
}

impl Cli {
    /// Whether the invocation asks for any work at all.
    pub fn requests_something(&self) -> bool {
        self.help
            || self.bench_json
            || self.fleet.is_some()
            || self.wire.is_some()
            || !self.wanted.is_empty()
    }
}

/// A rejected command line; `Display` gives the reason (the caller
/// appends [`USAGE`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// `--fleet` / `--wire` operand: a machine count that must be ≥ 1, with
/// an explicit message for `0` (a silent no-op benchmark would be
/// worse than an error).
fn positive_count(flag: &str, operand: Option<String>) -> Result<usize, CliError> {
    match operand.as_deref().map(str::parse::<usize>) {
        Some(Ok(0)) => Err(CliError(format!(
            "{flag} 0 would benchmark an empty fleet; pass a machine count of at least 1"
        ))),
        Some(Ok(n)) => Ok(n),
        Some(Err(_)) => Err(CliError(format!(
            "{flag} needs a positive machine count, got {:?}",
            operand.unwrap_or_default()
        ))),
        None => Err(CliError(format!("{flag} needs a positive machine count"))),
    }
}

/// Parses and validates `args` (the process arguments *without* the
/// binary name).
///
/// # Errors
///
/// [`CliError`] on unknown flags, unknown experiment names, missing
/// operands, or a zero/non-numeric `--fleet` / `--wire` / `--seed`
/// operand. Nothing is partially applied on error.
pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Cli, CliError> {
    let mut cli = Cli {
        cfg: ExperimentConfig::default(),
        wanted: BTreeSet::new(),
        markdown: false,
        bench_json: false,
        fleet: None,
        wire: None,
        frame: FrameKind::default(),
        faults: None,
        anomaly: false,
        help: false,
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--markdown" => cli.markdown = true,
            "--bench-json" => cli.bench_json = true,
            "--fleet" => cli.fleet = Some(positive_count("--fleet", args.next())?),
            "--wire" => cli.wire = Some(positive_count("--wire", args.next())?),
            "--frame" => match args.next() {
                Some(s) => match FrameKind::parse(&s) {
                    Some(kind) => cli.frame = kind,
                    None => {
                        return Err(CliError(format!(
                            "--frame must be \"planar\" or \"varint\", got {s:?}"
                        )))
                    }
                },
                None => {
                    return Err(CliError(
                        "--frame needs a sample-frame format: planar or varint".into(),
                    ))
                }
            },
            "--faults" => match args.next().map(|s| (s.parse::<u64>(), s)) {
                Some((Ok(seed), _)) => cli.faults = Some(seed),
                Some((Err(_), s)) => {
                    return Err(CliError(format!(
                        "--faults needs an integer fault-plan seed, got {s:?}"
                    )))
                }
                None => return Err(CliError("--faults needs an integer fault-plan seed".into())),
            },
            "--anomaly" => cli.anomaly = true,
            "--quick" => {
                let out = cli.cfg.out_dir.clone();
                let seed = cli.cfg.seed;
                cli.cfg = ExperimentConfig::quick();
                cli.cfg.out_dir = out;
                cli.cfg.seed = seed;
            }
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(seed) => cli.cfg.seed = seed,
                None => return Err(CliError("--seed needs an integer".into())),
            },
            "--out" => match args.next() {
                Some(dir) => cli.cfg.out_dir = dir.into(),
                None => return Err(CliError("--out needs a directory".into())),
            },
            "--help" | "-h" => cli.help = true,
            other if !other.starts_with('-') => {
                if other == "all" {
                    cli.wanted
                        .extend(ALL_EXPANSION.iter().map(|s| (*s).to_owned()));
                } else if EXPERIMENTS.contains(&other) {
                    cli.wanted.insert(other.to_owned());
                } else {
                    return Err(CliError(format!("unknown experiment {other}")));
                }
            }
            other => return Err(CliError(format!("unknown flag {other}"))),
        }
    }
    if cli.faults.is_some() && cli.wire.is_none() {
        return Err(CliError(
            "--faults injects faults into the wire chaos harness; also pass --wire N".into(),
        ));
    }
    if cli.anomaly && cli.wire.is_none() {
        return Err(CliError(
            "--anomaly runs the adaptive-sampling phase of the wire benchmark; also pass --wire N"
                .into(),
        ));
    }
    Ok(cli)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_strs(args: &[&str]) -> Result<Cli, CliError> {
        parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn zero_fleet_is_rejected_with_a_clear_error() {
        let err = parse_strs(&["--fleet", "0"]).unwrap_err();
        assert!(
            err.to_string().contains("at least 1"),
            "error must say what a valid count is: {err}"
        );
    }

    #[test]
    fn zero_wire_is_rejected_with_a_clear_error() {
        let err = parse_strs(&["--wire", "0"]).unwrap_err();
        assert!(err.to_string().contains("--wire"), "names the flag: {err}");
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn missing_and_garbage_counts_are_rejected() {
        assert!(parse_strs(&["--fleet"]).is_err());
        assert!(parse_strs(&["--wire"]).is_err());
        let err = parse_strs(&["--wire", "many"]).unwrap_err();
        assert!(
            err.to_string().contains("many"),
            "echoes the operand: {err}"
        );
        // A flag where a count belongs is a missing operand, not a name.
        assert!(parse_strs(&["--fleet", "--quick"]).is_err());
    }

    #[test]
    fn valid_counts_parse() {
        let cli = parse_strs(&["--fleet", "256", "--wire", "1024"]).unwrap();
        assert_eq!(cli.fleet, Some(256));
        assert_eq!(cli.wire, Some(1024));
        assert!(cli.requests_something());
        assert!(cli.wanted.is_empty());
    }

    #[test]
    fn faults_flag_parses_and_requires_wire() {
        let cli = parse_strs(&["--wire", "64", "--faults", "1234"]).unwrap();
        assert_eq!(cli.faults, Some(1234));
        assert_eq!(cli.wire, Some(64));
        // Seed 0 is a legitimate seed, unlike a zero machine count.
        let cli = parse_strs(&["--wire", "64", "--faults", "0"]).unwrap();
        assert_eq!(cli.faults, Some(0));

        let err = parse_strs(&["--faults", "7"]).unwrap_err();
        assert!(
            err.to_string().contains("--wire"),
            "points at the fix: {err}"
        );
        let err = parse_strs(&["--wire", "8", "--faults", "lots"]).unwrap_err();
        assert!(
            err.to_string().contains("lots"),
            "echoes the operand: {err}"
        );
        assert!(parse_strs(&["--wire", "8", "--faults"]).is_err());
    }

    #[test]
    fn anomaly_flag_parses_and_requires_wire() {
        let cli = parse_strs(&["--wire", "64", "--anomaly"]).unwrap();
        assert!(cli.anomaly);
        let cli = parse_strs(&["--wire", "64"]).unwrap();
        assert!(!cli.anomaly, "adaptive sampling is opt-in");
        // Composes with the chaos harness: detector-under-fire run.
        let cli = parse_strs(&["--wire", "64", "--faults", "7", "--anomaly"]).unwrap();
        assert!(cli.anomaly && cli.faults == Some(7));

        let err = parse_strs(&["--anomaly"]).unwrap_err();
        assert!(
            err.to_string().contains("--wire"),
            "points at the fix: {err}"
        );
    }

    #[test]
    fn frame_flag_selects_the_wire_format() {
        let cli = parse_strs(&["--wire", "64"]).unwrap();
        assert_eq!(cli.frame, FrameKind::Planar, "planar is the default");
        let cli = parse_strs(&["--wire", "64", "--frame", "varint"]).unwrap();
        assert_eq!(cli.frame, FrameKind::Varint);
        let cli = parse_strs(&["--wire", "64", "--frame", "planar"]).unwrap();
        assert_eq!(cli.frame, FrameKind::Planar);

        let err = parse_strs(&["--wire", "64", "--frame", "protobuf"]).unwrap_err();
        assert!(
            err.to_string().contains("protobuf"),
            "echoes the operand: {err}"
        );
        assert!(
            err.to_string().contains("planar") && err.to_string().contains("varint"),
            "names the valid formats: {err}"
        );
        assert!(parse_strs(&["--wire", "64", "--frame"]).is_err());
    }

    #[test]
    fn unknown_experiments_and_flags_are_rejected() {
        assert!(parse_strs(&["table9"]).is_err());
        assert!(parse_strs(&["--frobnicate"]).is_err());
        assert!(parse_strs(&["table1", "bogus"]).is_err());
    }

    #[test]
    fn all_expands_to_everything_but_slow_sweeps() {
        let cli = parse_strs(&["all"]).unwrap();
        assert!(cli.wanted.contains("table1"));
        assert!(cli.wanted.contains("shape"));
        assert!(!cli.wanted.contains("ablate"));
        assert!(!cli.wanted.contains("selection"));
        assert_eq!(cli.wanted.len(), 12);
    }

    #[test]
    fn quick_keeps_seed_and_out_dir() {
        let cli = parse_strs(&["--seed", "42", "--out", "/tmp/x", "--quick", "shape"]).unwrap();
        assert_eq!(cli.cfg.seed, 42);
        assert_eq!(cli.cfg.out_dir, std::path::PathBuf::from("/tmp/x"));
        assert!(cli.cfg.trace_seconds < ExperimentConfig::default().trace_seconds);
    }

    #[test]
    fn empty_invocation_requests_nothing() {
        let cli = parse_strs(&[]).unwrap();
        assert!(!cli.requests_something());
        assert!(parse_strs(&["-h"]).unwrap().help);
    }
}
