//! Pipeline throughput benchmark (`repro --bench-json`).
//!
//! Times the three stages that dominate every reproduction run — the
//! machine tick loop, the multi-workload capture and the calibration
//! fit — and writes the results as `BENCH_pipeline.json` so perf
//! changes can be compared commit to commit.

use crate::{capture_all, ExperimentConfig};
use serde::Serialize;
use std::time::Instant;
use tdp_simsys::{Machine, MachineConfig};
use tdp_workloads::{Workload, WorkloadSet};

/// One stage's wall-clock measurement.
#[derive(Debug, Clone, Serialize)]
pub struct StageRate {
    /// Work units completed (ticks or traces).
    pub units: u64,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Units per second.
    pub per_sec: f64,
}

impl StageRate {
    pub(crate) fn new(units: u64, wall_secs: f64) -> Self {
        Self {
            units,
            wall_secs,
            per_sec: units as f64 / wall_secs,
        }
    }
}

/// Full pipeline benchmark report.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineReport {
    /// Master seed the measured run used.
    pub seed: u64,
    /// Post-ramp trace seconds per workload.
    pub trace_seconds: u64,
    /// Single-machine tick loop, 8x specjbb (hot path in isolation).
    pub tick: StageRate,
    /// Aggregate tick rate across the parallel 12-workload capture.
    pub capture_ticks: StageRate,
    /// Trace rate of the parallel 12-workload capture.
    pub capture_traces: StageRate,
    /// Calibration (training capture + fit), wall seconds.
    pub calibration_wall_secs: f64,
    /// Peak resident set (VmHWM), kilobytes; 0 when unavailable.
    pub peak_rss_kb: u64,
}

/// Ticks timed by the isolated tick-loop stage.
const TICK_LOOP_TICKS: u64 = 200_000;

/// Runs the three stages and assembles the report.
pub fn run(cfg: &ExperimentConfig) -> PipelineReport {
    // Stage 1: the tick hot path in isolation, on the heaviest standard
    // deployment (8 instances of specjbb exercise every subsystem).
    let mut machine = Machine::new(MachineConfig::default());
    WorkloadSet::new(Workload::SpecJbb, 8, 0).deploy(&mut machine);
    // One activity buffer reused for the whole loop — the shape the
    // estimator and testbed hot paths use.
    let mut activity = tdp_simsys::TickActivity::empty();
    for _ in 0..5_000 {
        machine.tick_into(&mut activity); // warm-up: reach steady state
    }
    let start = Instant::now();
    for _ in 0..TICK_LOOP_TICKS {
        machine.tick_into(&mut activity);
        std::hint::black_box(&activity);
    }
    let tick = StageRate::new(TICK_LOOP_TICKS, start.elapsed().as_secs_f64());

    // Stage 2: the full multi-workload capture (the experiment
    // bottleneck). One simulated second is 1000 ticks.
    let expected_ticks: u64 = Workload::ALL
        .iter()
        .map(|&w| {
            let set = cfg.standard_set(w);
            cfg.seconds_for(&set) * 1000
        })
        .sum();
    let start = Instant::now();
    let traces = capture_all(cfg);
    let wall = start.elapsed().as_secs_f64();
    let capture_ticks = StageRate::new(expected_ticks, wall);
    let capture_traces = StageRate::new(traces.len() as u64, wall);
    drop(traces);

    // Stage 3: calibration (training captures + per-subsystem fits).
    let start = Instant::now();
    std::hint::black_box(crate::calibrate(cfg));
    let calibration_wall_secs = start.elapsed().as_secs_f64();

    PipelineReport {
        seed: cfg.seed,
        trace_seconds: cfg.trace_seconds,
        tick,
        capture_ticks,
        capture_traces,
        calibration_wall_secs,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Runs the benchmark, writes `BENCH_pipeline.json` under the output
/// directory and returns the rendered JSON.
///
/// # Panics
///
/// Panics if the output directory is unwritable (consistent with the
/// rest of the repro harness).
pub fn run_and_write(cfg: &ExperimentConfig) -> String {
    let report = run(cfg);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = cfg.out_dir.join("BENCH_pipeline.json");
    std::fs::write(&path, &json).expect("write BENCH_pipeline.json");
    eprintln!("bench: wrote {}", path.display());
    json
}

/// Peak resident set size in kB from `/proc/self/status` (Linux);
/// 0 elsewhere.
pub(crate) fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_rate_divides() {
        let r = StageRate::new(100, 2.0);
        assert_eq!(r.per_sec, 50.0);
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        // On Linux this must parse; elsewhere 0 is acceptable.
        if cfg!(target_os = "linux") {
            assert!(peak_rss_kb() > 0);
        }
    }
}
