//! Shared harness code for the reproduction binary and the Criterion
//! benches.
//!
//! The experiment index lives in `DESIGN.md`; each `Experiment` here
//! regenerates one of the paper's tables or figures. Traces are captured
//! in parallel and results are written both as human-readable tables on
//! stdout and as CSV files under the output directory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod cli;
pub mod experiments;
pub mod figures;
pub mod fleet;
pub mod pipeline;
pub mod selection;
pub mod wire;

use std::path::PathBuf;
use tdp_workloads::{Workload, WorkloadSet};
use trickledown::testbed::{capture, Trace};
use trickledown::{CalibrationSuite, Calibrator, SystemPowerModel};

/// Global configuration for a reproduction run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Master seed; every trace derives from it.
    pub seed: u64,
    /// Post-ramp trace length per workload, seconds.
    pub trace_seconds: u64,
    /// Stagger between instance starts, seconds (paper: 30–60).
    pub ramp_seconds: u64,
    /// Where CSV artefacts are written.
    pub out_dir: PathBuf,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            seed: 2007,
            trace_seconds: 240,
            ramp_seconds: 30,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for smoke runs (`repro --quick`).
    pub fn quick() -> Self {
        Self {
            trace_seconds: 60,
            ramp_seconds: 4,
            ..Self::default()
        }
    }

    /// Total seconds captured for one standard workload deployment.
    pub fn seconds_for(&self, set: &WorkloadSet) -> u64 {
        set.fully_ramped_ms() / 1000 + self.trace_seconds
    }

    /// The standard deployment of `workload` under this configuration.
    pub fn standard_set(&self, workload: Workload) -> WorkloadSet {
        let mut set = WorkloadSet::standard(workload);
        // Scale the default staggers to the configured ramp.
        if set.stagger_ms >= 10_000 {
            set.stagger_ms = self.ramp_seconds * 1000;
        }
        set
    }
}

/// Captures the standard trace of one workload.
pub fn capture_workload(cfg: &ExperimentConfig, workload: Workload) -> Trace {
    let set = cfg.standard_set(workload);
    capture(
        set,
        cfg.seconds_for(&set),
        cfg.seed ^ workload_seed(workload),
    )
}

/// Captures all twelve standard traces on a pooled parallel map sized
/// to the host (previously one thread per trace, which oversubscribed
/// small hosts).
///
/// Each trace is seeded independently from the master seed, and
/// [`tdp_parallel::par_map`] returns results in workload order, so the
/// output is bit-identical to capturing the workloads serially —
/// regardless of core count. `tests/golden_determinism.rs` pins this.
pub fn capture_all(cfg: &ExperimentConfig) -> Vec<Trace> {
    tdp_parallel::par_map(Workload::ALL.iter().copied(), |w| capture_workload(cfg, w))
}

/// Runs the paper's calibration recipe and returns the fitted model.
pub fn calibrate(cfg: &ExperimentConfig) -> SystemPowerModel {
    let suite = CalibrationSuite::capture(cfg.seed, cfg.ramp_seconds);
    Calibrator::new()
        .calibrate(&suite)
        .expect("the training recipe provides variation for every subsystem")
}

fn workload_seed(w: Workload) -> u64 {
    0x9e37_79b9u64.wrapping_mul(w as u64 + 1)
}

/// Writes rows of `f64` columns as CSV under the configured directory.
///
/// # Panics
///
/// Panics on I/O errors — the repro harness treats an unwritable output
/// directory as fatal.
pub fn write_csv(
    cfg: &ExperimentConfig,
    name: &str,
    header: &str,
    rows: impl IntoIterator<Item = Vec<f64>>,
) -> PathBuf {
    use std::io::Write as _;
    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = cfg.out_dir.join(name);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create CSV file"));
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(f, "{}", line.join(",")).expect("write row");
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_smaller() {
        let q = ExperimentConfig::quick();
        let d = ExperimentConfig::default();
        assert!(q.trace_seconds < d.trace_seconds);
        assert!(q.ramp_seconds < d.ramp_seconds);
    }

    #[test]
    fn workload_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for &w in Workload::ALL {
            assert!(seen.insert(workload_seed(w)));
        }
    }

    #[test]
    fn csv_writer_roundtrip() {
        let cfg = ExperimentConfig {
            out_dir: std::env::temp_dir().join("tdp-bench-test"),
            ..ExperimentConfig::quick()
        };
        let path = write_csv(&cfg, "t.csv", "a,b", vec![vec![1.0, 2.0], vec![3.0, 4.5]]);
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4.5\n");
    }
}
