//! Table experiments (the paper's Tables 1–4) and the coefficient
//! comparison.

use crate::{write_csv, ExperimentConfig};
use tdp_counters::Subsystem;
use tdp_workloads::WorkloadClass;
use trickledown::testbed::Trace;
use trickledown::{PowerCharacterization, SystemPowerModel, ValidationReport};

/// Runs Table 1 (mean subsystem power) and Table 2 (standard
/// deviations), returning the rendered tables and writing CSVs.
pub fn tables_1_and_2(cfg: &ExperimentConfig, traces: &[Trace]) -> (String, String) {
    let c = PowerCharacterization::from_traces(traces);
    let rows = c.rows.iter().map(|r| {
        let mut row = Vec::with_capacity(11);
        row.extend_from_slice(&r.mean_w);
        row.extend_from_slice(&r.std_w);
        row.push(r.total_w);
        row
    });
    write_csv(
        cfg,
        "table1_table2.csv",
        "cpu_mean,chipset_mean,memory_mean,io_mean,disk_mean,\
         cpu_std,chipset_std,memory_std,io_std,disk_std,total_mean",
        rows,
    );
    (c.render_means(), c.render_std_devs())
}

/// Runs Tables 3 and 4 (per-workload model error, split integer vs FP),
/// returning the rendered report.
pub fn tables_3_and_4(
    cfg: &ExperimentConfig,
    model: &SystemPowerModel,
    traces: &[Trace],
) -> (ValidationReport, String) {
    let report = ValidationReport::validate(model, traces);
    let rows = report.rows.iter().map(|r| {
        Subsystem::ALL
            .iter()
            .map(|&s| r.error_pct(s))
            .collect::<Vec<f64>>()
    });
    write_csv(
        cfg,
        "table3_table4.csv",
        "cpu_err_pct,chipset_err_pct,memory_err_pct,io_err_pct,disk_err_pct",
        rows,
    );
    let rendered = report.render();
    (report, rendered)
}

/// Summary line comparing the reproduction's headline number against
/// the paper's: average per-subsystem error across all workloads.
pub fn headline(report: &ValidationReport) -> String {
    let avg = report.class_average(None);
    let worst = avg.iter().cloned().fold(0.0f64, f64::max);
    format!(
        "average error per subsystem: cpu {:.2}%  chipset {:.2}%  memory {:.2}%  \
         io {:.2}%  disk {:.2}%  (paper: <9% per subsystem; worst here {:.2}%)",
        avg[Subsystem::Cpu.index()],
        avg[Subsystem::Chipset.index()],
        avg[Subsystem::Memory.index()],
        avg[Subsystem::Io.index()],
        avg[Subsystem::Disk.index()],
        worst
    )
}

/// Renders fitted-vs-published coefficients (the Equations 1–5
/// comparison).
pub fn coefficients(model: &SystemPowerModel) -> String {
    let paper = SystemPowerModel::paper();
    let mut out = String::new();
    out.push_str("coefficient                 fitted            paper\n");
    let mut row = |name: &str, fitted: f64, published: f64| {
        out.push_str(&format!("{name:<24} {fitted:>12.4e} {published:>14.4e}\n"));
    };
    row("cpu.halt_w", model.cpu.halt_w, paper.cpu.halt_w);
    row("cpu.active_w", model.cpu.active_w, paper.cpu.active_w);
    row("cpu.upc_w", model.cpu.upc_w, paper.cpu.upc_w);
    row(
        "memory.background_w",
        model.memory.background_w,
        paper.memory.background_w,
    );
    row("memory.lin", model.memory.lin, paper.memory.lin);
    row("memory.quad", model.memory.quad, paper.memory.quad);
    row("disk.dc_w", model.disk.dc_w, paper.disk.dc_w);
    row("disk.int_lin", model.disk.int_lin, paper.disk.int_lin);
    row("disk.int_quad", model.disk.int_quad, paper.disk.int_quad);
    row("disk.dma_lin", model.disk.dma_lin, paper.disk.dma_lin);
    row("disk.dma_quad", model.disk.dma_quad, paper.disk.dma_quad);
    row("io.dc_w", model.io.dc_w, paper.io.dc_w);
    row("io.int_lin", model.io.int_lin, paper.io.int_lin);
    row("io.int_quad", model.io.int_quad, paper.io.int_quad);
    row(
        "chipset.constant_w",
        model.chipset.constant_w,
        paper.chipset.constant_w,
    );
    out
}

/// Checks the report for the paper's qualitative claims; returns a list
/// of `(claim, holds)` pairs. Used by `repro verify-shape` and the
/// integration tests.
pub fn shape_checks(
    characterization: &PowerCharacterization,
    report: &ValidationReport,
) -> Vec<(String, bool)> {
    let mut checks = Vec::new();
    let find = |name: &str| {
        characterization
            .rows
            .iter()
            .find(|r| r.workload.name() == name)
    };

    if let (Some(idle), Some(peak)) = (
        find("idle"),
        characterization
            .rows
            .iter()
            .max_by(|a, b| a.total_w.partial_cmp(&b.total_w).unwrap()),
    ) {
        let frac = idle.total_w / peak.total_w;
        checks.push((
            format!(
                "idle is ~46% of peak total power (got {:.0}%)",
                frac * 100.0
            ),
            (0.35..0.60).contains(&frac),
        ));
    }

    // CPU dominates SPEC workloads (>53% of total in the paper).
    for name in ["gcc", "mcf", "vortex", "wupwise"] {
        if let Some(row) = find(name) {
            let frac = row.mean_w[Subsystem::Cpu.index()] / row.total_w;
            checks.push((
                format!("{name}: CPU >45% of total (got {:.0}%)", frac * 100.0),
                frac > 0.45,
            ));
        }
    }

    // Memory ordering: lucas > mesa (46.4 vs 33.9 in the paper).
    if let (Some(lucas), Some(mesa)) = (find("lucas"), find("mesa")) {
        let li = lucas.mean_w[Subsystem::Memory.index()];
        let me = mesa.mean_w[Subsystem::Memory.index()];
        checks.push((
            format!("lucas memory ({li:.1} W) > mesa memory ({me:.1} W)"),
            li > me,
        ));
    }

    // dbt-2 barely above idle CPU.
    if let (Some(dbt2), Some(idle)) = (find("dbt-2"), find("idle")) {
        let d = dbt2.mean_w[Subsystem::Cpu.index()];
        let i = idle.mean_w[Subsystem::Cpu.index()];
        checks.push((
            format!("dbt-2 CPU ({d:.1} W) within 35 W of idle ({i:.1} W)"),
            d - i < 35.0,
        ));
    }

    // DiskLoad leads the I/O and disk columns.
    if let Some(dl) = find("diskload") {
        let io_max = characterization
            .rows
            .iter()
            .map(|r| r.mean_w[Subsystem::Io.index()])
            .fold(0.0f64, f64::max);
        checks.push((
            "diskload has the highest I/O power".to_owned(),
            dl.mean_w[Subsystem::Io.index()] >= io_max - 1e-9,
        ));
    }

    // Disk dynamic range is tiny over a large DC offset.
    if let (Some(dl), Some(idle)) = (find("diskload"), find("idle")) {
        let delta = dl.mean_w[Subsystem::Disk.index()] - idle.mean_w[Subsystem::Disk.index()];
        checks.push((
            format!("diskload disk power only +{delta:.2} W over idle (<20%)"),
            delta > 0.0 && delta < 0.2 * idle.mean_w[Subsystem::Disk.index()],
        ));
    }

    // Model errors: all-workload average <9%-ish per subsystem.
    let avg = report.class_average(None);
    for &s in Subsystem::ALL {
        checks.push((
            format!(
                "{s} all-workload average error {:.2}% < 12%",
                avg[s.index()]
            ),
            avg[s.index()] < 12.0,
        ));
    }

    // The CPU model's worst workload is mcf (speculation power).
    if let Some(worst) = report.rows.iter().max_by(|a, b| {
        a.error_pct(Subsystem::Cpu)
            .partial_cmp(&b.error_pct(Subsystem::Cpu))
            .unwrap()
    }) {
        checks.push((
            format!(
                "CPU model's worst workload is mcf (got {} at {:.1}%)",
                worst.workload.name(),
                worst.error_pct(Subsystem::Cpu)
            ),
            worst.workload.name() == "mcf",
        ));
    }

    checks
}

/// Average error over the paper's floating-point set, for table-4
/// comparisons.
pub fn fp_average(report: &ValidationReport) -> [f64; 5] {
    report.class_average(Some(WorkloadClass::FloatingPoint))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture_workload;
    use tdp_workloads::Workload;

    #[test]
    fn coefficients_table_mentions_all_models() {
        let s = coefficients(&SystemPowerModel::paper());
        for name in ["cpu.halt_w", "memory.lin", "disk.dma_quad", "io.int_lin"] {
            assert!(s.contains(name), "{name} missing");
        }
    }

    #[test]
    fn shape_checks_produce_verdicts_on_tiny_run() {
        let cfg = ExperimentConfig {
            trace_seconds: 6,
            ramp_seconds: 1,
            out_dir: std::env::temp_dir().join("tdp-bench-shape"),
            ..ExperimentConfig::quick()
        };
        let traces = vec![
            capture_workload(&cfg, Workload::Idle),
            capture_workload(&cfg, Workload::Mesa),
        ];
        let c = PowerCharacterization::from_traces(&traces);
        let model = SystemPowerModel::paper();
        let report = ValidationReport::validate(&model, &traces);
        let checks = shape_checks(&c, &report);
        assert!(!checks.is_empty());
        // lucas/mesa and dbt-2 checks are skipped without their traces.
        assert!(checks.iter().all(|(label, _)| !label.is_empty()));
    }
}
