//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! Usage: repro [--quick] [--seed N] [--out DIR] <experiment>...
//!
//! Experiments:
//!   table1        mean subsystem power per workload   (Table 1)
//!   table2        subsystem power standard deviation  (Table 2)
//!   table3        model error, integer workloads      (Table 3)
//!   table4        model error, FP workloads           (Table 4)
//!   fig2          4-CPU power trace, 8x gcc           (Figure 2)
//!   fig3          memory via L3 misses, mesa ramp     (Figure 3)
//!   fig4          prefetch vs demand bus txns, mcf    (Figure 4)
//!   fig5          memory via bus txns, mcf            (Figure 5)
//!   fig6          disk via DMA+interrupts, DiskLoad   (Figure 6)
//!   fig7          I/O via interrupts, DiskLoad        (Figure 7)
//!   coefficients  fitted vs published Eq 1-5 constants
//!   shape         qualitative shape checks vs the paper
//!   ablate        ablation studies (DESIGN.md §5)
//!   selection     event-selection search per subsystem (§3.3)
//!   all           everything above (except ablate)
//! ```

use std::process::ExitCode;
use tdp_bench::cli::{self, USAGE};
use tdp_bench::experiments::{
    coefficients, headline, shape_checks, tables_1_and_2, tables_3_and_4,
};
use tdp_bench::figures::{fig2, fig3, fig4_fig5, fig6_fig7};
use tdp_bench::{calibrate, capture_all};
use trickledown::PowerCharacterization;

fn main() -> ExitCode {
    let parsed = match cli::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if parsed.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if !parsed.requests_something() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let (cfg, wanted, markdown) = (parsed.cfg, parsed.wanted, parsed.markdown);
    if parsed.bench_json {
        eprintln!(
            "repro: benchmarking pipeline throughput (seed {}, {} s traces)…",
            cfg.seed, cfg.trace_seconds
        );
        println!("{}", tdp_bench::pipeline::run_and_write(&cfg));
    }
    if let Some(n_machines) = parsed.fleet {
        eprintln!(
            "repro: benchmarking fleet estimation ({n_machines} machines, seed {})…",
            cfg.seed
        );
        println!("{}", tdp_bench::fleet::run_and_write(&cfg, n_machines));
    }
    if let Some(n_machines) = parsed.wire {
        let frame = parsed.frame;
        let anomaly = parsed.anomaly;
        let with_anomaly = if anomaly { " + anomaly detection" } else { "" };
        if let Some(fault_seed) = parsed.faults {
            eprintln!(
                "repro: chaos harness — fault-injected streaming ingest{with_anomaly} \
                 ({n_machines} machines, {} frames, fault seed {fault_seed}, seed {})…",
                frame.label(),
                cfg.seed
            );
            println!(
                "{}",
                tdp_bench::wire::run_chaos_and_write(&cfg, n_machines, fault_seed, frame, anomaly)
            );
        } else {
            eprintln!(
                "repro: benchmarking wire codec + streaming ingest{with_anomaly} \
                 ({n_machines} machines, {} frames, seed {})…",
                frame.label(),
                cfg.seed
            );
            println!(
                "{}",
                tdp_bench::wire::run_and_write(&cfg, n_machines, frame, anomaly)
            );
        }
    }
    if wanted.is_empty() {
        return ExitCode::SUCCESS;
    }

    let needs_traces = ["table1", "table2", "table3", "table4", "shape"]
        .iter()
        .any(|e| wanted.contains(*e));
    let needs_model = ["table3", "table4", "fig2", "coefficients", "shape"]
        .iter()
        .any(|e| wanted.contains(*e));

    eprintln!(
        "repro: seed {}, {} s traces, {} s ramp, writing {}",
        cfg.seed,
        cfg.trace_seconds,
        cfg.ramp_seconds,
        cfg.out_dir.display()
    );

    let model = if needs_model {
        eprintln!("repro: calibrating (gcc / mcf / DiskLoad training traces)…");
        Some(calibrate(&cfg))
    } else {
        None
    };
    let traces = if needs_traces {
        eprintln!("repro: capturing 12 workload traces in parallel…");
        Some(capture_all(&cfg))
    } else {
        None
    };

    let mut report = None;
    let mut characterization = None;
    if let Some(traces) = &traces {
        if wanted.contains("table1") || wanted.contains("table2") || wanted.contains("shape") {
            let (t1, t2) = tables_1_and_2(&cfg, traces);
            let c = PowerCharacterization::from_traces(traces);
            if wanted.contains("table1") {
                println!("\n=== Table 1: subsystem average power (W) ===");
                if markdown {
                    println!("{}", c.render_markdown());
                } else {
                    println!("{t1}");
                }
            }
            characterization = Some(c);
            if wanted.contains("table2") {
                println!("\n=== Table 2: subsystem power standard deviation (W) ===");
                println!("{t2}");
            }
        }
        if wanted.contains("table3") || wanted.contains("table4") || wanted.contains("shape") {
            let model = model.as_ref().expect("model built for tables 3/4");
            let (rep, rendered) = tables_3_and_4(&cfg, model, traces);
            if wanted.contains("table3") || wanted.contains("table4") {
                println!("\n=== Tables 3 & 4: per-workload model error (Eq 6, %) ===");
                if markdown {
                    println!("{}", rep.render_markdown());
                } else {
                    println!("{rendered}");
                }
                println!("{}", headline(&rep));
            }
            report = Some(rep);
        }
    }

    if wanted.contains("fig2") {
        let r = fig2(&cfg, model.as_ref().expect("model built for fig2"));
        println!("fig2: {} -> {}", r.summary, r.csv_path.display());
    }
    if wanted.contains("fig3") {
        let r = fig3(&cfg);
        println!("fig3: {} -> {}", r.summary, r.csv_path.display());
    }
    if wanted.contains("fig4") || wanted.contains("fig5") {
        let (f4, f5) = fig4_fig5(&cfg);
        if wanted.contains("fig4") {
            println!("fig4: {} -> {}", f4.summary, f4.csv_path.display());
        }
        if wanted.contains("fig5") {
            println!("fig5: {} -> {}", f5.summary, f5.csv_path.display());
        }
    }
    if wanted.contains("fig6") || wanted.contains("fig7") {
        let (f6, f7) = fig6_fig7(&cfg);
        if wanted.contains("fig6") {
            println!("fig6: {} -> {}", f6.summary, f6.csv_path.display());
        }
        if wanted.contains("fig7") {
            println!("fig7: {} -> {}", f7.summary, f7.csv_path.display());
        }
    }
    if wanted.contains("ablate") {
        println!("\n=== Ablation studies ===");
        println!("{}", tdp_bench::ablations::run_all(&cfg));
    }
    if wanted.contains("selection") {
        println!("\n=== Event selection per subsystem (§3.3) ===");
        let (_, rendered) = tdp_bench::selection::run(&cfg);
        println!("{rendered}");
    }
    if wanted.contains("coefficients") {
        println!("\n=== Fitted vs published coefficients (Eq 1-5) ===");
        println!("{}", coefficients(model.as_ref().expect("model built")));
    }
    if wanted.contains("shape") {
        let (Some(c), Some(r)) = (&characterization, &report) else {
            eprintln!("shape requires traces and model (internal ordering bug)");
            return ExitCode::FAILURE;
        };
        println!("\n=== Qualitative shape checks vs the paper ===");
        let checks = shape_checks(c, r);
        let mut failed = 0;
        for (label, ok) in &checks {
            println!("  [{}] {}", if *ok { "ok" } else { "FAIL" }, label);
            if !ok {
                failed += 1;
            }
        }
        println!("{} of {} checks hold", checks.len() - failed, checks.len());
        if failed > 0 {
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}
