//! Dev-only decomposition of the fused planar ingest path. Not wired
//! into the report; run manually: `cargo run --release -p tdp-bench
//! --bin profile_wire`. Stages run round-robin and report the minimum
//! over rounds to cancel frequency-ramp and ordering effects.

use std::hint::black_box;
use std::time::Instant;
use tdp_bench::fleet::synthetic_set;
use tdp_bench::ExperimentConfig;
use tdp_fleet::FleetEstimator;
use tdp_wire::frame::{FrameType, PayloadChecksum};
use tdp_wire::planar::decode_planes;
use tdp_wire::{ingest_serial_with, CursorItem, FrameCursor, FrameKind, IngestState, WireEncoder};
use trickledown::SystemPowerModel;

const N: usize = 1024;
const REPS: usize = 100;
const ROUNDS: usize = 7;

fn main() {
    let seed = ExperimentConfig::default().seed;
    let sets: Vec<_> = (0..N).map(|m| synthetic_set(m, seed)).collect();
    let mut enc = WireEncoder::with_kind(FrameKind::Planar);
    // First window announces layouts; the steady-state window (what the
    // repro harness times after warm-up) carries sample frames only.
    for (m, set) in sets.iter().enumerate() {
        enc.push_sample_set(m as u64, set).expect("encodes");
    }
    let warm_buf = enc.take_bytes();
    let mut sets2 = sets.clone();
    for set in &mut sets2 {
        set.seq += 1;
    }
    for (m, set) in sets2.iter().enumerate() {
        enc.push_sample_set(m as u64, set).expect("encodes");
    }
    let buf = enc.take_bytes();
    // The ingest stages re-encode a fresh-sequence window untimed per
    // rep (a re-ingested window would read as all-duplicates and skip
    // the fold entirely) — also leaving the buffer cache-warm exactly
    // as the repro harness's encode→ingest rotation does.
    let mut next_seq = 3u64;
    let d = tdp_simd::Dispatch::active();

    let mut lanes: Vec<f64> = Vec::new();
    let mut scratch: Vec<u64> = Vec::new();
    let model = SystemPowerModel::paper();
    let mut est = FleetEstimator::with_capacity(model.clone(), N);
    let mut state = IngestState::new();
    ingest_serial_with(&mut state, &warm_buf, N, &mut est);
    ingest_serial_with(&mut state, &buf, N, &mut est);
    let mut mem = FleetEstimator::with_capacity(model, N);
    mem.process_window(&sets);
    let mut dec = tdp_wire::FrameDecoder::new();
    {
        let mut cursor = FrameCursor::new(&warm_buf);
        while let Some(item) = cursor.next() {
            if let CursorItem::Frame { start, header } = item {
                dec.decode_frame(&header, cursor.payload(start, &header))
                    .expect("warm-up decodes");
            }
        }
    }

    let names = [
        "cursor walk",
        "+ decode (no finish)",
        "+ finish + verdict",
        "full ingest",
        "ingest + estimate",
        "in-memory baseline",
        "checksum only",
        "decode_frame (row out)",
        "fold only (hot lanes)",
        "pending only",
        "pending + fold",
    ];
    let mut best = [f64::INFINITY; 11];
    for _ in 0..ROUNDS {
        for (k, slot) in best.iter_mut().enumerate() {
            let mut timed = 0.0f64;
            let t = Instant::now();
            for _rep in 0..REPS {
                match k {
                    0 => {
                        let mut frames = 0u64;
                        for item in FrameCursor::new(&buf) {
                            if let CursorItem::Frame { .. } = item {
                                frames += 1;
                            }
                        }
                        black_box(frames);
                    }
                    1 | 2 => {
                        let mut cursor = FrameCursor::new(&buf);
                        let mut ok = 0u64;
                        while let Some(item) = cursor.next() {
                            if let CursorItem::Frame { start, header } = item {
                                if header.frame_type != FrameType::PlanarSample {
                                    continue;
                                }
                                let payload = cursor.payload(start, &header);
                                let mut ck = PayloadChecksum::new(&header);
                                decode_planes(
                                    d,
                                    payload,
                                    header.n_events as usize,
                                    header.cpu_count as usize,
                                    false,
                                    &mut lanes,
                                    &mut scratch,
                                    &mut ck,
                                )
                                .expect("clean");
                                if k == 2 {
                                    ok += (ck.finish(payload) == header.checksum) as u64;
                                }
                                black_box(&lanes);
                            }
                        }
                        black_box(ok);
                    }
                    3 | 4 => {
                        for set in &mut sets2 {
                            set.seq = next_seq;
                        }
                        next_seq += 1;
                        for (m, set) in sets2.iter().enumerate() {
                            enc.push_sample_set(m as u64, set).expect("encodes");
                        }
                        let b = enc.take_bytes();
                        let ti = Instant::now();
                        let rep = ingest_serial_with(&mut state, &b, N, &mut est);
                        if k == 4 {
                            black_box(est.estimate().fleet_total());
                        }
                        timed += ti.elapsed().as_secs_f64();
                        assert_eq!(rep.rows_written, N as u64, "clean commit path");
                    }
                    5 => {
                        black_box(mem.process_window(&sets).fleet_total());
                    }
                    6 => {
                        // The full checksum alone: new + absorb + finish
                        // per frame, no decode.
                        let mut cursor = FrameCursor::new(&buf);
                        let mut ok = 0u64;
                        while let Some(item) = cursor.next() {
                            if let CursorItem::Frame { start, header } = item {
                                if header.frame_type != FrameType::PlanarSample {
                                    continue;
                                }
                                let payload = cursor.payload(start, &header);
                                let mut ck = PayloadChecksum::new(&header);
                                ck.absorb_to(payload, payload.len());
                                ok += (ck.finish(payload) == header.checksum) as u64;
                            }
                        }
                        black_box(ok);
                    }
                    7 => {
                        // Public decode path: pending + fold + row copy,
                        // no ledger/batch machinery.
                        let mut acc = 0.0f64;
                        let mut cursor = FrameCursor::new(&buf);
                        while let Some(item) = cursor.next() {
                            if let CursorItem::Frame { start, header } = item {
                                if let Ok(tdp_wire::Decoded::Row { row, .. }) =
                                    dec.decode_frame(&header, cursor.payload(start, &header))
                                {
                                    acc += row[1];
                                }
                            }
                        }
                        black_box(acc);
                    }
                    9 | 10 => {
                        let mut acc = 0.0f64;
                        let mut seqs = 0u64;
                        let mut cursor = FrameCursor::new(&buf);
                        while let Some(item) = cursor.next() {
                            if let CursorItem::Frame { start, header } = item {
                                let payload = cursor.payload(start, &header);
                                if k == 9 {
                                    seqs += dec.profile_pending_only(&header, payload).expect("ok");
                                } else {
                                    acc += dec.profile_row(&header, payload).expect("ok")[1];
                                }
                            }
                        }
                        black_box((acc, seqs));
                    }
                    _ => {
                        // The lane→row fold alone, on one hot 36-lane
                        // buffer — exactly what the fused path pays per
                        // machine after the payload walk.
                        let identity_pos: [u16; 9] = std::array::from_fn(|j| j as u16);
                        let hot: Vec<f64> = (0..36).map(|i| (i + 1) as f64 * 1e6).collect();
                        let mut acc = 0.0f64;
                        for _ in 0..N {
                            let row = tdp_fleet::fold_event_lanes(
                                d,
                                black_box(&hot),
                                4,
                                &identity_pos,
                                true,
                            );
                            acc += row[1];
                        }
                        black_box(acc);
                    }
                }
            }
            let secs = if matches!(k, 3 | 4) {
                timed
            } else {
                t.elapsed().as_secs_f64()
            };
            let per = secs * 1e9 / (N * REPS) as f64;
            if per < *slot {
                *slot = per;
            }
        }
    }
    for (name, ns) in names.iter().zip(best) {
        println!("{name:22} {ns:7.1} ns/machine");
    }
}
