//! Wire codec benchmark (`repro --wire N`).
//!
//! Measures the telemetry wire path end-to-end on the same synthetic
//! fleet data as `repro --fleet N` ([`crate::fleet::synthetic_set`]):
//!
//! * **encode** — a persistent [`tdp_wire::WireEncoder`] appending one
//!   steady-state window (a sample frame per machine; layout frames
//!   appear only in the untimed warm-up window, as with any long-lived
//!   producer);
//! * **decode** — walking the window with [`FrameCursor`] +
//!   [`FrameDecoder`]: checksum, varint/delta reconstruction and rate
//!   derivation, rows discarded (the codec cost in isolation);
//! * **fused** — [`tdp_wire::ingest_serial`]: decode straight into the
//!   [`FleetEstimator`]'s batch plus the column evaluation;
//! * **streamed** — [`tdp_wire::stream_window`]: sharded decoders
//!   feeding the batch through bounded SPSC rings (equals fused on a
//!   single-worker pool);
//! * **in-memory** — `FleetEstimator::process_window` on the already
//!   decoded [`SampleSet`]s, measured in the same run as the baseline
//!   the fused path is compared against.
//!
//! The benchmark always encodes every window in **both** sample-frame
//! formats ([`FrameKind::Planar`] and [`FrameKind::Varint`]). The
//! `--frame` flag selects which buffer the headline paths time; the
//! other format's fused path is timed in the same rotation (matched
//! noise), so `BENCH_wire.json` always carries a planar-vs-varint A/B:
//! per-format frame sizes, per-format fused ns/machine and per-format
//! payload-decode stage costs.
//!
//! The warm-up window asserts the wire paths — both formats — are
//! bit-identical to the in-memory path before any timing starts.
//! Results land in `BENCH_wire.json`.
//!
//! With `--faults SEED` the benchmark becomes the **chaos harness**
//! ([`run_chaos`]): a seeded [`FaultPlan`] batters the same stream and
//! the graceful-degradation contract is checked instead of throughput;
//! the verdict lands in `CHAOS.json`.

use crate::fleet::refill_sets;
use crate::pipeline::{peak_rss_kb, StageRate};
use crate::ExperimentConfig;
use serde::Serialize;
use std::collections::{BTreeSet, VecDeque};
use std::hint::black_box;
use std::time::Instant;
use tdp_counters::{PerfEvent, SampleSet};
use tdp_fleet::{
    fold_event_lanes, AnomalyDetector, FleetEstimator, SampleBatch, Verdict, ROW_EVENTS,
};
use tdp_parallel::WorkerPool;
use tdp_wire::frame::{FrameType, PayloadChecksum};
use tdp_wire::planar::decode_planes;
use tdp_wire::varint::read_uvarints;
use tdp_wire::{
    ingest_serial_with, stream_window_with, CursorItem, DegradePolicy, FaultKind, FaultPlan,
    FaultedWindow, FrameCursor, FrameDecoder, FrameKind, IngestState, PipelineHealth, StreamConfig,
    StreamReport, WireEncoder,
};
use trickledown::SystemPowerModel;

/// Full wire benchmark report.
#[derive(Debug, Clone, Serialize)]
pub struct WireReport {
    /// Machines per window.
    pub n_machines: usize,
    /// Sample-frame format the headline paths timed (`planar` /
    /// `varint` — the `--frame` selection); the `planar_*` / `varint_*`
    /// fields always carry the A/B numbers for both.
    pub frame_format: &'static str,
    /// Windows measured per path.
    pub windows: u64,
    /// Worker-pool concurrency available to the streamed path.
    pub workers: usize,
    /// Decoder shards the streamed path actually used. The serial
    /// fused fallback reports `1`: one decoder ran, fused with the
    /// consumer (mirrors [`StreamReport::decoders`]).
    pub decoders: usize,
    /// Encoded bytes per steady-state window in the selected format
    /// (sample frames only — layouts are announced once, in the
    /// untimed warm-up window).
    pub bytes_per_window: u64,
    /// Frames per steady-state window (one sample frame per machine).
    pub frames_per_window: u64,
    /// Mean encoded frame size in the selected format, bytes.
    pub bytes_per_frame: f64,
    /// Mean encoded frame size of the column-planar format, bytes.
    pub planar_bytes_per_frame: f64,
    /// Mean encoded frame size of the varint format, bytes.
    pub varint_bytes_per_frame: f64,
    /// Planar window bytes over varint window bytes (> 1.0 means the
    /// fixed-width planes pay size for their decode speed).
    pub planar_vs_varint_bytes: f64,
    /// Encode path; units are frames.
    pub encode: StageRate,
    /// Decode-only path; units are frames.
    pub decode: StageRate,
    /// Fused serial decode→estimate; units are machine-windows.
    pub fused: StageRate,
    /// Pool-sharded streaming decode→estimate; units are machine-windows.
    pub streamed: StageRate,
    /// In-memory `process_window` baseline; units are machine-windows.
    pub in_memory: StageRate,
    /// Headline: frames decoded per second (decode-only path).
    pub decode_frames_per_sec: f64,
    /// Nanoseconds per machine-estimate, fused wire path (selected
    /// format).
    pub fused_ns_per_machine: f64,
    /// Fused ns per machine-estimate over planar frames, timed in the
    /// same rotation as the selected format (matched-noise A/B).
    pub planar_fused_ns_per_machine: f64,
    /// Fused ns per machine-estimate over varint frames, timed in the
    /// same rotation as the selected format (matched-noise A/B).
    pub varint_fused_ns_per_machine: f64,
    /// Nanoseconds per machine-estimate, streamed wire path.
    pub streamed_ns_per_machine: f64,
    /// Nanoseconds per machine-estimate, in-memory baseline.
    pub in_memory_ns_per_machine: f64,
    /// Fused wire cost relative to the in-memory baseline
    /// (1.0 = free codec; the ISSUE target is ≤ 2.0).
    pub fused_vs_in_memory: f64,
    /// Isolated checksum stage: frame walk + payload checksum mix
    /// only, ns per machine-window.
    pub stage_checksum_ns_per_machine: f64,
    /// Isolated payload-decode stage of the **varint** leg (frame walk
    /// plus bulk LEB128 decode), ns per machine-window; overlaps the
    /// checksum stage on the fused path, so the stages sum past the
    /// whole. Always equals
    /// [`stage_payload_varint_ns_per_machine`](Self::stage_payload_varint_ns_per_machine);
    /// the duplicate keeps the historical field name alive so stage
    /// budgets stay comparable across report generations. (It used to
    /// echo whichever leg `--frame` selected, silently reporting the
    /// planar stage under the varint name for planar runs.)
    pub stage_varint_ns_per_machine: f64,
    /// Isolated payload-decode stage over the planar buffer (always
    /// measured, whatever `--frame` selected).
    pub stage_payload_planar_ns_per_machine: f64,
    /// Isolated payload-decode stage over the varint buffer (always
    /// measured, whatever `--frame` selected).
    pub stage_payload_varint_ns_per_machine: f64,
    /// Isolated health stage: the batched [`DegradePolicy`] sanity
    /// scan over one window's columns, ns per machine-window.
    pub stage_health_ns_per_machine: f64,
    /// Isolated extraction stage: decoded f64 event lanes → SoA batch
    /// columns via the fused planar fold ([`fold_event_lanes`]), with
    /// no decode or model evaluation behind it, ns per machine-window.
    /// (Before the decode-to-column fusion this stage timed the
    /// in-memory `SampleSet` → column path, ~120 ns at N=1024; the
    /// fused fold is what a planar wire window actually pays.)
    pub stage_extraction_ns_per_machine: f64,
    /// Corrupt frames the streamed path saw (must be 0 on clean input).
    pub corrupt_frames: u64,
    /// Rows shed under backpressure (0 in the default lossless mode).
    pub dropped_rows: u64,
    /// Full-ring events decoder shards waited on.
    pub backpressure_events: u64,
    /// Peak resident set (VmHWM), kilobytes; 0 when unavailable.
    pub peak_rss_kb: u64,
    /// Kernel dispatch flavour the run used (`scalar` / `wide` — see
    /// [`tdp_simd::Dispatch::active`]).
    pub simd: &'static str,
    /// Adaptive-sampling results (`--anomaly`): detection quality of
    /// the closed anomaly→decimation loop plus the decimated-ingest
    /// A/B, nested under an `"anomaly"` key in `BENCH_wire.json`;
    /// omitted without the flag.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub anomaly: Option<AnomalyBench>,
}

/// Adaptive-sampling benchmark block (`--wire N --anomaly`).
///
/// Two sub-runs over the same synthetic fleet:
///
/// * **detection quality** — the full closed loop (gated encode →
///   fused ingest → fleet estimate → [`AnomalyDetector`] → decimation
///   grants fed back to the encoder), clean through warm-up and
///   steady state, then a sane-but-extreme rate spike on one machine;
/// * **decimated ingest A/B** — the same stream encoded at full rate
///   and under a fleet-wide decimation grant, fused serial ingest
///   timed for both (matched windows, alternating order). The model
///   evaluation is excluded: decimation cuts decode + row work, not
///   the estimator, and mixing the two would understate the cut.
#[derive(Debug, Clone, Serialize)]
pub struct AnomalyBench {
    /// Closed-loop windows driven (warm-up + clean steady state +
    /// spike; the loop stops once the spike is flagged).
    pub anomaly_windows: u64,
    /// Detector warm-up (`baseline_windows`): no verdicts, no grants,
    /// full-rate transmission before this many windows.
    pub anomaly_warmup_windows: u64,
    /// Machine-windows flagged (anomalous or suspect) before the
    /// spike began — false positives; must be 0 on this fault-free
    /// prefix.
    pub anomaly_false_positives: u64,
    /// Largest robust z-score any machine reached while the fleet was
    /// clean and the detector warmed (headroom under the detection
    /// threshold; warm-up z is unsmoothed and never judged).
    pub anomaly_clean_max_z: f64,
    /// The spiked machine was flagged `Anomalous`.
    pub anomaly_spike_detected: bool,
    /// Windows from spike onset to the flag (1 = the first window the
    /// spike could possibly be judged).
    pub anomaly_detection_windows: u64,
    /// The protocol's worst-case detection latency: the spiked
    /// machine's decimation when the spike began (its sample may wait
    /// out its transmission phase).
    pub anomaly_detection_bound_windows: u64,
    /// Serial and pool-sharded detector digests matched every window.
    pub anomaly_serial_pooled_identical: bool,
    /// Decimation the A/B grants every machine (the detector's
    /// `healthy_decimation`).
    pub decimation: u16,
    /// Steady-state windows the A/B timed per stream.
    pub decimation_ab_windows: u64,
    /// Mean encoded bytes per steady-state window, full-rate stream.
    pub decimation_full_bytes_per_window: f64,
    /// Mean encoded bytes per steady-state window, decimated stream.
    pub decimation_decimated_bytes_per_window: f64,
    /// Full-rate bytes over decimated bytes (≈ the decimation).
    pub decimation_wire_ratio: f64,
    /// Mean sample frames per steady-state window, full-rate stream
    /// (one per machine).
    pub decimation_full_frames_per_window: f64,
    /// Mean sample frames per steady-state window, decimated stream
    /// (≈ machines ÷ decimation; reconstruction fills the rest).
    pub decimation_decimated_frames_per_window: f64,
    /// Median fused serial ingest (decode → health → batch rows, no
    /// model evaluation), ns per machine, full-rate stream.
    pub decimation_full_ingest_ns_per_machine: f64,
    /// Same, decimated stream (held machines reconstructed from their
    /// last transmitted window).
    pub decimation_decimated_ingest_ns_per_machine: f64,
    /// Full-rate over decimated ingest cost — the headline; the ISSUE
    /// target is ≥ 2 at decimation 4.
    pub decimation_ingest_speedup: f64,
}

/// Appends one window of `sets` to the persistent encoder and drains
/// the bytes. Steady state: the encoder's layout memory means layout
/// frames appear only in the first window (or when a machine's PMU
/// programming changes), exactly as a long-lived producer behaves.
fn encode_window(enc: &mut WireEncoder, sets: &[SampleSet]) -> Vec<u8> {
    for (m, set) in sets.iter().enumerate() {
        enc.push_sample_set(m as u64, set)
            .expect("synthetic sets encode");
    }
    enc.take_bytes()
}

/// Decodes every frame in `buf`, discarding rows: the codec cost with
/// no estimator behind it. Returns the frame count. The decoder
/// persists so sample-only steady-state windows resolve their layouts.
fn decode_only(dec: &mut FrameDecoder, buf: &[u8]) -> u64 {
    let mut cursor = FrameCursor::new(buf);
    let mut frames = 0u64;
    while let Some(item) = cursor.next() {
        if let CursorItem::Frame { start, header } = item {
            let decoded = dec
                .decode_frame(&header, cursor.payload(start, &header))
                .expect("clean stream decodes");
            black_box(&decoded);
            frames += 1;
        }
    }
    frames
}

/// Times one isolated payload-decode pass over an encoded window:
/// frame walk + bulk LEB128 decode for varint sample frames, or the
/// fused unzigzag/unfold/widen walk into f64 lanes for planar sample
/// frames (each planar frame pays its in-walk checksum absorbs too —
/// the single-pass read `decode_planes` performs on the real path).
/// Returns seconds.
fn payload_decode_pass(
    d: tdp_simd::Dispatch,
    buf: &[u8],
    scratch: &mut Vec<u64>,
    lanes: &mut Vec<f64>,
) -> f64 {
    let start = Instant::now();
    let mut cursor = FrameCursor::new(buf);
    while let Some(item) = cursor.next() {
        if let CursorItem::Frame { start, header } = item {
            let payload = cursor.payload(start, &header);
            match header.frame_type {
                FrameType::Sample => {
                    let n = header.cpu_count as usize * header.n_events as usize;
                    scratch.resize(n, 0);
                    let mut pos = 0usize;
                    read_uvarints(d, payload, &mut pos, scratch).expect("clean payload varints");
                    black_box(&scratch);
                }
                FrameType::PlanarSample => {
                    let mut ck = PayloadChecksum::new(&header);
                    decode_planes(
                        d,
                        payload,
                        header.n_events as usize,
                        header.cpu_count as usize,
                        false,
                        lanes,
                        scratch,
                        &mut ck,
                    )
                    .expect("clean planar payload");
                    black_box(&lanes);
                }
                FrameType::Layout => continue,
            }
        }
    }
    start.elapsed().as_secs_f64()
}

/// Times the isolated pipeline stages over one window encoded in both
/// formats, plus its decoded sets: checksum mix (selected buffer),
/// payload decode (planar buffer, then varint buffer), batched health
/// scan and lane→column extraction (the fused planar fold:
/// [`fold_event_lanes`] over pre-decoded f64 event lanes — the stage
/// the decode-to-column fusion actually runs per machine; the lanes
/// are staged untimed so the stage isolates the fold, not the decode
/// the payload stages already measure). Returns seconds per stage in
/// that order. These passes share scratch across windows like the real
/// paths, so steady-state cost is what gets measured.
#[allow(clippy::too_many_arguments)] // one slot per reusable scratch buffer
fn stage_passes(
    selected: &[u8],
    planar_buf: &[u8],
    varint_buf: &[u8],
    sets: &[SampleSet],
    batch: &mut SampleBatch,
    policy: &DegradePolicy,
    scratch: &mut Vec<u64>,
    lanes: &mut Vec<f64>,
    fold_lanes: &mut Vec<f64>,
    mask: &mut Vec<u8>,
) -> [f64; 5] {
    let d = tdp_simd::Dispatch::active();

    let start = Instant::now();
    let mut cursor = FrameCursor::new(selected);
    while let Some(item) = cursor.next() {
        if let CursorItem::Frame { start, header } = item {
            black_box(header.expected_checksum(cursor.payload(start, &header)));
        }
    }
    let checksum = start.elapsed().as_secs_f64();

    let payload_planar = payload_decode_pass(d, planar_buf, scratch, lanes);
    let payload_varint = payload_decode_pass(d, varint_buf, scratch, lanes);

    // Stage the fleet's event lanes untimed (exactly what the planar
    // decode leaves in the lane buffer: event-major f64, CPU 0 first).
    // The synthetic fleet is the canonical identity layout, so the
    // event order is ROW_EVENTS.
    let cpus = sets.first().map_or(0, |s| s.per_cpu.len());
    let lane_stride = ROW_EVENTS.len() * cpus;
    fold_lanes.resize(sets.len() * lane_stride, 0.0);
    for (m, set) in sets.iter().enumerate() {
        let dst = &mut fold_lanes[m * lane_stride..(m + 1) * lane_stride];
        for (c, cpu) in set.per_cpu.iter().enumerate() {
            debug_assert_eq!(cpu.counts().len(), ROW_EVENTS.len());
            for (e, &(_, count)) in cpu.counts().iter().enumerate() {
                dst[e * cpus + c] = count as f64;
            }
        }
    }
    let identity_pos: [u16; ROW_EVENTS.len()] = std::array::from_fn(|k| k as u16);
    let start = Instant::now();
    batch.clear();
    for m in 0..sets.len() {
        let row = fold_event_lanes(
            d,
            &fold_lanes[m * lane_stride..(m + 1) * lane_stride],
            cpus,
            &identity_pos,
            true,
        );
        batch.push_row(row);
    }
    black_box(&batch);
    let extraction = start.elapsed().as_secs_f64();

    let start = Instant::now();
    policy.sane_mask_batch(d, batch.columns(), mask);
    black_box(&mask);
    let health = start.elapsed().as_secs_f64();

    [checksum, payload_planar, payload_varint, health, extraction]
}

/// Reduces per-window wall times to a noise-robust total: the median
/// window, scaled by the window count so the downstream rate math is
/// unchanged. On an idle machine this converges to the mean; on a
/// contended one it discards the windows the scheduler stole (a
/// preempted window reads as several times its true cost, and a sum
/// would charge that to the codec).
fn robust_total(samples: &mut [f64]) -> f64 {
    median(samples) * samples.len() as f64
}

/// The sample median (mean of the middle pair for even counts), `0.0`
/// for an empty slice.
fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable_by(f64::total_cmp);
    let mid = samples.len() / 2;
    if samples.len().is_multiple_of(2) {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    }
}

/// Boosts one machine's activity far above the fleet while staying
/// inside every [`DegradePolicy`] cap (UPC ≤ 8 of 16, L3 ≤ 32 of 50
/// per kilocycle, DMA ≤ 0.17 of 0.2 per cycle, …): a runaway workload
/// the sanity layer must *not* quarantine — only the cross-sectional
/// detector can catch it.
fn spike_set(set: &mut SampleSet) {
    for sample in &mut set.per_cpu {
        let (cpu, seq) = (sample.cpu(), sample.seq());
        let boosted: Vec<(PerfEvent, u64)> = sample
            .counts()
            .iter()
            .map(|&(e, c)| {
                let boost = match e {
                    PerfEvent::FetchedUops => 4,
                    PerfEvent::L3LoadMisses => 12,
                    PerfEvent::BusTransactionsAll => 8,
                    PerfEvent::DmaOtherBusTransactions => 5,
                    PerfEvent::InterruptsTotal => 4,
                    PerfEvent::DiskInterrupts => 4,
                    _ => 1,
                };
                (e, c * boost)
            })
            .collect();
        sample.refill(cpu, seq, boosted);
    }
}

/// The `--anomaly` phase: drives the closed detection loop for
/// quality numbers, then times the decimated-ingest A/B. Panics on a
/// contract violation the test suite already pins (quarantined spike
/// rows, unhealthy steady state) — a run that breaks those must not
/// report numbers.
fn anomaly_bench(cfg: &ExperimentConfig, n_machines: usize, kind: FrameKind) -> AnomalyBench {
    let n = n_machines.max(1);
    let model = SystemPowerModel::paper();
    let pool = WorkerPool::global();
    let mut sets: Vec<SampleSet> = Vec::with_capacity(n);

    // ---- Detection quality: the full closed loop. ----
    let mut enc = WireEncoder::with_kind(kind);
    let mut state = IngestState::new();
    let mut est = FleetEstimator::with_capacity(model.clone(), n);
    let mut serial = AnomalyDetector::default();
    let mut pooled = AnomalyDetector::default();
    let warmup = serial.config().baseline_windows as u64;
    let dec = serial.config().healthy_decimation;
    let spiked = n / 2;
    // Spike onset only after every machine has cycled through its
    // decimated phase at least twice: steady state, worst-case gating.
    let onset = warmup + 2 * dec as u64;
    let mut false_positives = 0u64;
    let mut clean_max_z = 0.0f64;
    let mut identical = true;
    let mut detected_after = None;
    let mut windows_driven = 0u64;
    for w in 0..onset + dec as u64 {
        windows_driven = w + 1;
        refill_sets(&mut sets, n, w ^ cfg.seed);
        let spiking = w >= onset;
        if spiking {
            spike_set(&mut sets[spiked]);
        }
        for (m, set) in sets.iter_mut().enumerate() {
            set.seq = w;
            if enc.should_send(m as u64, w) {
                enc.push_sample_set(m as u64, set)
                    .expect("synthetic sets encode");
            }
        }
        let buf = enc.take_bytes();
        let rep = ingest_serial_with(&mut state, &buf, n, &mut est);
        assert_eq!(rep.rows_written, n as u64, "window {w}: every row lands");
        assert_eq!(
            rep.rows_quarantined, 0,
            "window {w}: the spike is sane-but-extreme; only the detector may flag it"
        );
        let estimates = est.estimate().clone();
        serial.update(&estimates);
        pooled.update_pooled(&estimates, pool);
        identical &= serial.digest() == pooled.digest();
        for m in 0..n as u64 {
            enc.set_decimation(m, serial.decimation(m as usize));
        }
        if !spiking {
            let s = serial.summary();
            false_positives += s.anomalous + s.suspect;
            if serial.warmed() {
                clean_max_z = clean_max_z.max(s.max_z);
            }
        } else if serial.verdict(spiked) == Verdict::Anomalous {
            detected_after = Some(w - onset + 1);
            break;
        }
    }

    // ---- Decimated-ingest A/B: same sets, full rate vs fleet-wide
    // grant, fused serial ingest timed (no model evaluation). ----
    let ab_windows: u64 = (262_144 / n as u64).clamp(16, 128);
    let mut full_enc = WireEncoder::with_kind(kind);
    let mut dec_enc = WireEncoder::with_kind(kind);
    let mut full_state = IngestState::new();
    let mut dec_state = IngestState::new();
    let mut full_est = FleetEstimator::with_capacity(model.clone(), n);
    let mut dec_est = FleetEstimator::with_capacity(model, n);
    // Grants are announced in-band on each machine's next transmitted
    // layout frame, so the decimated stream reaches its all-machines-
    // reconstructed steady state only once every phase has sent under
    // the grant: warm (untimed) until then.
    let warm = dec as u64 + 1;
    let (mut full_s, mut dec_s) = (Vec::<f64>::new(), Vec::<f64>::new());
    let (mut full_bytes, mut dec_bytes) = (0u64, 0u64);
    let (mut full_frames, mut dec_frames) = (0u64, 0u64);
    for w in 0..warm + ab_windows {
        refill_sets(&mut sets, n, w ^ cfg.seed);
        let mut senders = 0u64;
        for (m, set) in sets.iter_mut().enumerate() {
            set.seq = w;
            full_enc
                .push_sample_set(m as u64, set)
                .expect("synthetic sets encode");
            if dec_enc.should_send(m as u64, w) {
                dec_enc
                    .push_sample_set(m as u64, set)
                    .expect("synthetic sets encode");
                senders += 1;
            }
        }
        let full_buf = full_enc.take_bytes();
        let dec_buf = dec_enc.take_bytes();
        if w == 0 {
            // Window 0 seeds every machine's baseline row at full
            // rate; the fleet-wide grant starts with window 1.
            for m in 0..n as u64 {
                dec_enc.set_decimation(m, dec);
            }
        }

        // Alternate ingest order so cache-position bias averages out.
        let (mut full_elapsed, mut dec_elapsed) = (0.0f64, 0.0f64);
        for step in 0..2 {
            if (step + w as usize).is_multiple_of(2) {
                let start = Instant::now();
                let rep = ingest_serial_with(&mut full_state, &full_buf, n, &mut full_est);
                full_elapsed = start.elapsed().as_secs_f64();
                assert_eq!(rep.rows_written, n as u64);
                assert_eq!(rep.corrupt_frames, 0, "clean stream");
            } else {
                let start = Instant::now();
                let rep = ingest_serial_with(&mut dec_state, &dec_buf, n, &mut dec_est);
                dec_elapsed = start.elapsed().as_secs_f64();
                assert_eq!(rep.rows_written, n as u64);
                assert_eq!(rep.corrupt_frames, 0, "clean stream");
                if w >= warm {
                    // Steady state: absentees are reconstructions of
                    // their last transmitted window, never held or
                    // stale — the health contract of decimation.
                    assert_eq!(rep.rows_reconstructed, n as u64 - senders, "window {w}");
                    assert_eq!((rep.rows_held, rep.machines_stale), (0, 0), "window {w}");
                }
            }
        }
        if w >= warm {
            full_s.push(full_elapsed);
            dec_s.push(dec_elapsed);
            full_bytes += full_buf.len() as u64;
            dec_bytes += dec_buf.len() as u64;
            full_frames += n as u64;
            dec_frames += senders;
        }
    }
    let full_ns = median(&mut full_s) * 1e9 / n as f64;
    let dec_ns = median(&mut dec_s) * 1e9 / n as f64;
    let per_window = |total: u64| total as f64 / ab_windows as f64;

    AnomalyBench {
        anomaly_windows: windows_driven,
        anomaly_warmup_windows: warmup,
        anomaly_false_positives: false_positives,
        anomaly_clean_max_z: clean_max_z,
        anomaly_spike_detected: detected_after.is_some(),
        anomaly_detection_windows: detected_after.unwrap_or(0),
        anomaly_detection_bound_windows: dec as u64,
        anomaly_serial_pooled_identical: identical,
        decimation: dec,
        decimation_ab_windows: ab_windows,
        decimation_full_bytes_per_window: per_window(full_bytes),
        decimation_decimated_bytes_per_window: per_window(dec_bytes),
        decimation_wire_ratio: full_bytes as f64 / (dec_bytes as f64).max(1.0),
        decimation_full_frames_per_window: per_window(full_frames),
        decimation_decimated_frames_per_window: per_window(dec_frames),
        decimation_full_ingest_ns_per_machine: full_ns,
        decimation_decimated_ingest_ns_per_machine: dec_ns,
        decimation_ingest_speedup: full_ns / dec_ns.max(f64::MIN_POSITIVE),
    }
}

/// Runs all paths over the same windows and assembles the report.
/// `kind` selects the format the headline paths time; the other
/// format's fused path rides the same rotation for a matched-noise
/// A/B. Every per-path and per-stage figure is a **median over the
/// measured windows** (see [`robust_total`]), not a mean — the bench
/// often runs on shared single-CPU containers where preemption noise
/// otherwise dominates.
///
/// # Panics
///
/// Panics if a wire path's estimates are not bit-identical to the
/// in-memory baseline — that is the codec's core contract and a run
/// that breaks it must not report numbers.
///
/// With `anomaly` set, the adaptive-sampling phase ([`anomaly_bench`])
/// runs after the headline timing and its `anomaly_*` /
/// `decimation_*` fields join the report; the headline paths are
/// untouched (every machine still transmits every window).
pub fn run(
    cfg: &ExperimentConfig,
    n_machines: usize,
    kind: FrameKind,
    anomaly: bool,
) -> WireReport {
    let n_machines = n_machines.max(1);
    // Encoding dominates setup; fewer windows than the fleet bench
    // still average out scheduler noise because each window does
    // 6 passes over the same data.
    let windows: u64 = (262_144 / n_machines as u64).clamp(8, 256);
    let alt_kind = match kind {
        FrameKind::Planar => FrameKind::Varint,
        FrameKind::Varint => FrameKind::Planar,
    };
    let model = SystemPowerModel::paper();
    let pool = WorkerPool::global();
    let stream_cfg = StreamConfig::default();

    let mut fused = FleetEstimator::with_capacity(model.clone(), n_machines);
    let mut alt_fused = FleetEstimator::with_capacity(model.clone(), n_machines);
    let mut streamed = FleetEstimator::with_capacity(model.clone(), n_machines);
    let mut in_memory = FleetEstimator::with_capacity(model.clone(), n_machines);
    let mut enc = WireEncoder::with_kind(kind);
    let mut alt_enc = WireEncoder::with_kind(alt_kind);
    let mut decode_state = FrameDecoder::new();
    let mut fused_state = IngestState::new();
    let mut alt_fused_state = IngestState::new();
    let mut stream_state = IngestState::new();

    let mut sets: Vec<SampleSet> = Vec::with_capacity(n_machines);
    // Per-window wall times, reduced to a median after the run:
    // preemption on shared single-CPU runners inflates an arbitrary
    // subset of windows by multiples of their true cost, so a sum (or
    // mean) measures the scheduler, not the codec. The median window is
    // the steady-state cost.
    let (mut enc_s, mut dec_s, mut fused_s, mut alt_fused_s, mut str_s, mut mem_s) = (
        Vec::<f64>::new(),
        Vec::<f64>::new(),
        Vec::<f64>::new(),
        Vec::<f64>::new(),
        Vec::<f64>::new(),
        Vec::<f64>::new(),
    );
    let policy = DegradePolicy::default();
    let mut stage_batch = SampleBatch::with_capacity(n_machines);
    let mut stage_scratch: Vec<u64> = Vec::new();
    let mut stage_lanes: Vec<f64> = Vec::new();
    let mut stage_fold_lanes: Vec<f64> = Vec::new();
    let mut stage_mask: Vec<u8> = Vec::new();
    let mut stage_s: [Vec<f64>; 5] = Default::default();
    let mut stream_totals = StreamReport::default();
    let mut decoders_used = 0usize;
    let (mut bytes_per_window, mut alt_bytes_per_window, mut frames_per_window) =
        (0u64, 0u64, 0u64);

    for warmup in [true, false] {
        let measured_windows = if warmup { 1 } else { windows };
        for w in 0..measured_windows {
            let window = if warmup { u64::MAX } else { w ^ cfg.seed };
            refill_sets(&mut sets, n_machines, window);
            // `window` is a data salt and is deliberately scrambled; the
            // wire sequence numbers must stay monotone per machine (the
            // health layer reads a regression as a counter reset), so
            // override them: warm-up first, then 1, 2, …
            let seq = if warmup { 0 } else { w + 1 };
            for set in &mut sets {
                set.seq = seq;
            }

            let start = Instant::now();
            let buf = encode_window(&mut enc, &sets);
            let enc_elapsed = start.elapsed().as_secs_f64();
            // The other format's buffer is encoded untimed: same sets,
            // same layout epoch, so its fused pass below is a true A/B.
            let alt_buf = encode_window(&mut alt_enc, &sets);
            bytes_per_window = buf.len() as u64;
            alt_bytes_per_window = alt_buf.len() as u64;

            // Rotate path order so cache-position bias averages out.
            let (
                mut dec_elapsed,
                mut fused_elapsed,
                mut alt_elapsed,
                mut str_elapsed,
                mut mem_elapsed,
            ) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
            for step in 0..5 {
                match (step + w as usize) % 5 {
                    0 => {
                        let start = Instant::now();
                        frames_per_window = decode_only(&mut decode_state, &buf);
                        dec_elapsed = start.elapsed().as_secs_f64();
                    }
                    1 => {
                        let start = Instant::now();
                        let rep =
                            ingest_serial_with(&mut fused_state, &buf, n_machines, &mut fused);
                        let est = fused.estimate();
                        fused_elapsed = start.elapsed().as_secs_f64();
                        assert_eq!(rep.corrupt_frames, 0, "clean stream");
                        assert_eq!(rep.unknown_layout_frames, 0, "layouts persist");
                        black_box(est.fleet_total());
                    }
                    4 => {
                        let start = Instant::now();
                        let rep = ingest_serial_with(
                            &mut alt_fused_state,
                            &alt_buf,
                            n_machines,
                            &mut alt_fused,
                        );
                        let est = alt_fused.estimate();
                        alt_elapsed = start.elapsed().as_secs_f64();
                        assert_eq!(rep.corrupt_frames, 0, "clean stream");
                        assert_eq!(rep.unknown_layout_frames, 0, "layouts persist");
                        black_box(est.fleet_total());
                    }
                    2 => {
                        let start = Instant::now();
                        let rep = stream_window_with(
                            &mut stream_state,
                            pool,
                            &stream_cfg,
                            &buf,
                            n_machines,
                            &mut streamed,
                        );
                        let est = streamed.estimate();
                        str_elapsed = start.elapsed().as_secs_f64();
                        decoders_used = rep.decoders;
                        if !warmup {
                            stream_totals.absorb(&rep);
                        }
                        black_box(est.fleet_total());
                    }
                    _ => {
                        let start = Instant::now();
                        let est = in_memory.process_window(&sets);
                        mem_elapsed = start.elapsed().as_secs_f64();
                        black_box(est.fleet_total());
                    }
                }
            }

            if warmup {
                // The codec's contract, asserted on untimed data: both
                // wire paths bit-identical to in-memory ingestion.
                let mem = in_memory.estimates();
                for (name, wire_est) in [
                    ("fused", fused.estimates()),
                    ("alt-format fused", alt_fused.estimates()),
                    ("streamed", streamed.estimates()),
                ] {
                    for (a, b) in wire_est.total().iter().zip(mem.total()) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{name} wire path diverged from in-memory ingestion"
                        );
                    }
                }
            } else {
                enc_s.push(enc_elapsed);
                dec_s.push(dec_elapsed);
                fused_s.push(fused_elapsed);
                alt_fused_s.push(alt_elapsed);
                str_s.push(str_elapsed);
                mem_s.push(mem_elapsed);
                // The stage passes are diagnostic, not headline: run
                // them on a quarter of the windows so their five extra
                // data walks don't evict the cache the headline paths
                // are being measured in. The medians stay robust (64
                // samples at the default window count).
                if w % 4 == 0 {
                    let (planar_buf, varint_buf) = match kind {
                        FrameKind::Planar => (&buf, &alt_buf),
                        FrameKind::Varint => (&alt_buf, &buf),
                    };
                    let stages = stage_passes(
                        &buf,
                        planar_buf,
                        varint_buf,
                        &sets,
                        &mut stage_batch,
                        &policy,
                        &mut stage_scratch,
                        &mut stage_lanes,
                        &mut stage_fold_lanes,
                        &mut stage_mask,
                    );
                    for (samples, s) in stage_s.iter_mut().zip(stages) {
                        samples.push(s);
                    }
                }
            }
        }
    }

    let (enc_secs, dec_secs, fused_secs, alt_fused_secs, str_secs, mem_secs) = (
        robust_total(&mut enc_s),
        robust_total(&mut dec_s),
        robust_total(&mut fused_s),
        robust_total(&mut alt_fused_s),
        robust_total(&mut str_s),
        robust_total(&mut mem_s),
    );
    // Stage passes run on a sampled subset of windows, so their median
    // is scaled per machine directly rather than through the totals.
    let stage_med: [f64; 5] = std::array::from_fn(|i| median(&mut stage_s[i]));

    let machine_units = windows * n_machines as u64;
    let frame_units = windows * frames_per_window;
    let encode_rate = StageRate::new(frame_units, enc_secs);
    let decode_rate = StageRate::new(frame_units, dec_secs);
    let fused_rate = StageRate::new(machine_units, fused_secs);
    let streamed_rate = StageRate::new(machine_units, str_secs);
    let in_memory_rate = StageRate::new(machine_units, mem_secs);
    // Map selected/alt back onto planar/varint for the A/B fields.
    let (planar_window_bytes, varint_window_bytes, planar_fused_secs, varint_fused_secs) =
        match kind {
            FrameKind::Planar => (
                bytes_per_window,
                alt_bytes_per_window,
                fused_secs,
                alt_fused_secs,
            ),
            FrameKind::Varint => (
                alt_bytes_per_window,
                bytes_per_window,
                alt_fused_secs,
                fused_secs,
            ),
        };
    let per_machine = |window_secs: f64| window_secs * 1e9 / n_machines as f64;
    WireReport {
        n_machines,
        frame_format: kind.label(),
        windows,
        workers: pool.workers(),
        decoders: decoders_used,
        bytes_per_window,
        frames_per_window,
        bytes_per_frame: bytes_per_window as f64 / frames_per_window.max(1) as f64,
        planar_bytes_per_frame: planar_window_bytes as f64 / frames_per_window.max(1) as f64,
        varint_bytes_per_frame: varint_window_bytes as f64 / frames_per_window.max(1) as f64,
        planar_vs_varint_bytes: planar_window_bytes as f64 / varint_window_bytes.max(1) as f64,
        decode_frames_per_sec: decode_rate.per_sec,
        fused_ns_per_machine: fused_secs * 1e9 / machine_units as f64,
        planar_fused_ns_per_machine: planar_fused_secs * 1e9 / machine_units as f64,
        varint_fused_ns_per_machine: varint_fused_secs * 1e9 / machine_units as f64,
        streamed_ns_per_machine: str_secs * 1e9 / machine_units as f64,
        in_memory_ns_per_machine: mem_secs * 1e9 / machine_units as f64,
        fused_vs_in_memory: fused_secs / mem_secs,
        stage_checksum_ns_per_machine: per_machine(stage_med[0]),
        stage_varint_ns_per_machine: per_machine(stage_med[2]),
        stage_payload_planar_ns_per_machine: per_machine(stage_med[1]),
        stage_payload_varint_ns_per_machine: per_machine(stage_med[2]),
        stage_health_ns_per_machine: per_machine(stage_med[3]),
        stage_extraction_ns_per_machine: per_machine(stage_med[4]),
        encode: encode_rate,
        decode: decode_rate,
        fused: fused_rate,
        streamed: streamed_rate,
        in_memory: in_memory_rate,
        corrupt_frames: stream_totals.corrupt_frames,
        dropped_rows: stream_totals.dropped_rows,
        backpressure_events: stream_totals.backpressure_events,
        peak_rss_kb: peak_rss_kb(),
        simd: tdp_simd::Dispatch::active().label(),
        anomaly: anomaly.then(|| anomaly_bench(cfg, n_machines, kind)),
    }
}

/// Runs the benchmark, writes `BENCH_wire.json` under the output
/// directory and returns the rendered JSON.
///
/// # Panics
///
/// Panics if the output directory is unwritable (consistent with the
/// rest of the repro harness).
pub fn run_and_write(
    cfg: &ExperimentConfig,
    n_machines: usize,
    kind: FrameKind,
    anomaly: bool,
) -> String {
    let report = run(cfg, n_machines, kind, anomaly);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = cfg.out_dir.join("BENCH_wire.json");
    std::fs::write(&path, &json).expect("write BENCH_wire.json");
    eprintln!("bench: wrote {}", path.display());
    json
}

/// Chaos-harness report (`repro --wire N --faults SEED`), written to
/// `CHAOS.json`. The boolean verdicts are the machine-checkable
/// contract a CI smoke step asserts on; the counters say *how* the
/// pipeline degraded, not merely that it survived.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosReport {
    /// Machines per window.
    pub n_machines: usize,
    /// Sample-frame format the battered stream used (`planar` /
    /// `varint`) — the degradation contract must hold for both.
    pub frame_format: &'static str,
    /// Windows ingested (window 0 is fault-free and carries layouts).
    pub windows: u64,
    /// Seed of the [`FaultPlan`] that battered windows 1….
    pub fault_seed: u64,
    /// Faults the plan injected over the whole run.
    pub faults_injected: u64,
    /// Distinct machines a destructive fault ever touched.
    pub machines_affected: u64,
    /// Machines eligible for the final window's bit-identity check
    /// (no destructive fault within the staleness horizon).
    pub clean_machines_final_window: u64,
    /// Rows the faulted pipeline still delivered to the estimator.
    pub rows_written: u64,
    /// Frames rejected by checksum/structure validation.
    pub corrupt_frames: u64,
    /// Framing-loss recoveries and the bytes they skipped.
    pub resyncs: u64,
    /// Bytes skipped while resynchronising.
    pub resync_bytes: u64,
    /// Counter resets detected and re-baselined.
    pub resets_detected: u64,
    /// Duplicate machine-windows ignored.
    pub duplicate_windows: u64,
    /// Rows quarantined by the sanity policy.
    pub rows_quarantined: u64,
    /// Held (last-good) rows substituted for missing machines.
    pub rows_held: u64,
    /// Machines that exhausted the staleness budget.
    pub machines_stale: u64,
    /// Per-subsystem predictions clamped by the estimator.
    pub clamped_predictions: u64,
    /// Every injected fault landed in a health counter (per window).
    pub all_faults_accounted: bool,
    /// Machines outside the fault horizon estimated bit-identically
    /// to a fault-free run, every window.
    pub clean_subset_bit_identical: bool,
    /// Serial and pool-sharded ingest degraded identically
    /// (same health block, same estimate bits, every window).
    pub serial_sharded_identical: bool,
    /// Peak resident set (VmHWM), kilobytes; 0 when unavailable.
    pub peak_rss_kb: u64,
    /// Detector-under-fire results (`--anomaly`): the anomaly
    /// detector rides the faulted ingest's estimates. Nested under an
    /// `"anomaly"` key in `CHAOS.json`; omitted without the flag.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub anomaly: Option<ChaosAnomaly>,
}

/// Anomaly-detector sub-run of the chaos harness: every window's
/// faulted (serial-path) estimates are judged serially and pooled.
/// Faults *may* legitimately flag machines — a spiked row that passes
/// the sanity caps, a long-held machine diverging from live peers —
/// so the counters are evidence, not a contract; the contract is
/// serial/pooled bit-identity on battered data.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosAnomaly {
    /// Windows the detector judged (all of them; warm-up included).
    pub anomaly_windows: u64,
    /// Anomalous or suspect machine-windows over the faulted run.
    pub anomaly_flagged_machine_windows: u64,
    /// Largest robust z-score any machine reached.
    pub anomaly_max_z: f64,
    /// The detector warmed up (judged windows past its baseline).
    pub anomaly_warmed: bool,
    /// Serial and pool-sharded detector digests matched every window
    /// — the bit-identity contract under fire.
    pub anomaly_serial_pooled_identical: bool,
}

/// Counter floors implied by a window's injected faults — `false`
/// means a fault degraded the pipeline without being accounted.
fn faults_accounted(f: &FaultedWindow, rep: &StreamReport) -> bool {
    rep.corrupt_frames >= f.count(FaultKind::BitFlip)
        && rep.resyncs >= f.count(FaultKind::GarbageInsert) + f.count(FaultKind::TruncateTail)
        && rep.rows_quarantined >= f.count(FaultKind::RateSpike)
        && rep.resets_detected + rep.duplicate_windows
            >= f.count(FaultKind::SeqReset) + f.count(FaultKind::DuplicateFrame)
}

/// Per-machine `[memory, disk, io, total]` estimate bits.
fn estimate_bits(est: &mut FleetEstimator, n: usize) -> Vec<[u64; 4]> {
    let e = est.estimate();
    (0..n)
        .map(|i| {
            [
                e.memory()[i].to_bits(),
                e.disk()[i].to_bits(),
                e.io()[i].to_bits(),
                e.total()[i].to_bits(),
            ]
        })
        .collect()
}

/// Runs the fault-injection harness: the same synthetic fleet stream
/// is ingested clean and through a seeded [`FaultPlan`], serial and
/// pool-sharded, and the report records whether degradation stayed
/// inside its contract. Never panics on a contract violation — the
/// verdict booleans go `false` so a CI assertion on `CHAOS.json`
/// fails with the evidence on disk.
pub fn run_chaos(
    cfg: &ExperimentConfig,
    n_machines: usize,
    fault_seed: u64,
    kind: FrameKind,
    anomaly: bool,
) -> ChaosReport {
    let n_machines = n_machines.max(1);
    // Long enough for an outage to cross the staleness horizon,
    // recover, and re-enter the clean subset.
    let windows: u64 = 24;
    let model = SystemPowerModel::paper();
    let pool = WorkerPool::global();
    let stream_cfg = StreamConfig::default();
    let plan = FaultPlan::new(fault_seed);

    let mut clean_est = FleetEstimator::with_capacity(model.clone(), n_machines);
    let mut serial_est = FleetEstimator::with_capacity(model.clone(), n_machines);
    let mut sharded_est = FleetEstimator::with_capacity(model, n_machines);
    let mut clean_state = IngestState::new();
    let mut serial_state = IngestState::new();
    let mut sharded_state = IngestState::new();
    let mut enc = WireEncoder::with_kind(kind);

    let horizon = serial_state.policy().max_stale_windows as usize + 1;
    let mut recent: VecDeque<BTreeSet<u64>> = VecDeque::with_capacity(horizon);
    let mut ever_affected: BTreeSet<u64> = BTreeSet::new();
    let mut totals = StreamReport::default();
    let mut faults_injected = 0u64;
    let mut clamped = 0u64;
    let mut clean_machines_final = 0u64;
    let (mut accounted, mut clean_identical, mut paths_identical) = (true, true, true);
    let mut detectors = anomaly.then(|| {
        (
            AnomalyDetector::default(),
            AnomalyDetector::default(),
            ChaosAnomaly {
                anomaly_windows: 0,
                anomaly_flagged_machine_windows: 0,
                anomaly_max_z: 0.0,
                anomaly_warmed: false,
                anomaly_serial_pooled_identical: true,
            },
        )
    });

    let mut sets: Vec<SampleSet> = Vec::with_capacity(n_machines);
    for w in 0..windows {
        refill_sets(&mut sets, n_machines, w ^ cfg.seed);
        for set in &mut sets {
            set.seq = w + 1;
        }
        let clean_bytes = encode_window(&mut enc, &sets);

        // Window 0 stays pristine so every layout frame lands before
        // the plan starts cutting; all later windows take 1–3 faults.
        let faulted = (w > 0).then(|| plan.apply(w, &clean_bytes));
        let fault_bytes: &[u8] = faulted.as_ref().map_or(&clean_bytes, |f| &f.bytes);

        ingest_serial_with(&mut clean_state, &clean_bytes, n_machines, &mut clean_est);
        let clean_bits = estimate_bits(&mut clean_est, n_machines);

        let serial_rep =
            ingest_serial_with(&mut serial_state, fault_bytes, n_machines, &mut serial_est);
        clamped += serial_est.estimate().clamped_predictions();
        let serial_bits = estimate_bits(&mut serial_est, n_machines);
        totals.absorb(&serial_rep);

        if let Some((serial_det, pooled_det, rep)) = detectors.as_mut() {
            let estimates = serial_est.estimate().clone();
            serial_det.update(&estimates);
            pooled_det.update_pooled(&estimates, pool);
            rep.anomaly_windows += 1;
            rep.anomaly_serial_pooled_identical &= serial_det.digest() == pooled_det.digest();
            let s = serial_det.summary();
            rep.anomaly_flagged_machine_windows += s.anomalous + s.suspect;
            rep.anomaly_max_z = rep.anomaly_max_z.max(s.max_z);
            rep.anomaly_warmed |= serial_det.warmed();
        }

        let sharded_rep = stream_window_with(
            &mut sharded_state,
            pool,
            &stream_cfg,
            fault_bytes,
            n_machines,
            &mut sharded_est,
        );
        sharded_est.estimate();
        let sharded_bits = estimate_bits(&mut sharded_est, n_machines);

        // Sharding is an implementation detail: identical degradation
        // decisions, identical estimates (backpressure counters are
        // timing-dependent, so compare the health block, not the raw
        // report).
        paths_identical &= PipelineHealth::from_report(&serial_rep)
            == PipelineHealth::from_report(&sharded_rep)
            && serial_rep.rows_written == sharded_rep.rows_written
            && serial_bits == sharded_bits;

        if let Some(f) = &faulted {
            faults_injected += f.injected.len() as u64;
            accounted &= faults_accounted(f, &serial_rep);
            ever_affected.extend(f.affected.iter().copied());
        }

        // Machines with no destructive fault inside the staleness
        // horizon must estimate bit-identically to the fault-free run
        // (held rows replay history, so affection persists only while
        // a machine is being held).
        if recent.len() == horizon {
            recent.pop_front();
        }
        recent.push_back(
            faulted
                .as_ref()
                .map(|f| f.affected.clone())
                .unwrap_or_default(),
        );
        let dirty: BTreeSet<u64> = recent.iter().flatten().copied().collect();
        for m in 0..n_machines as u64 {
            if !dirty.contains(&m) {
                clean_identical &= serial_bits[m as usize] == clean_bits[m as usize];
            }
        }
        if w == windows - 1 {
            clean_machines_final = n_machines as u64 - dirty.len() as u64;
        }
    }

    ChaosReport {
        n_machines,
        frame_format: kind.label(),
        windows,
        fault_seed,
        faults_injected,
        machines_affected: ever_affected.len() as u64,
        clean_machines_final_window: clean_machines_final,
        rows_written: totals.rows_written,
        corrupt_frames: totals.corrupt_frames,
        resyncs: totals.resyncs,
        resync_bytes: totals.resync_bytes,
        resets_detected: totals.resets_detected,
        duplicate_windows: totals.duplicate_windows,
        rows_quarantined: totals.rows_quarantined,
        rows_held: totals.rows_held,
        machines_stale: totals.machines_stale,
        clamped_predictions: clamped,
        all_faults_accounted: accounted,
        clean_subset_bit_identical: clean_identical,
        serial_sharded_identical: paths_identical,
        peak_rss_kb: peak_rss_kb(),
        anomaly: detectors.map(|(_, _, rep)| rep),
    }
}

/// Runs the chaos harness, writes `CHAOS.json` under the output
/// directory and returns the rendered JSON.
///
/// # Panics
///
/// Panics if the output directory is unwritable (consistent with the
/// rest of the repro harness).
pub fn run_chaos_and_write(
    cfg: &ExperimentConfig,
    n_machines: usize,
    fault_seed: u64,
    kind: FrameKind,
    anomaly: bool,
) -> String {
    let report = run_chaos(cfg, n_machines, fault_seed, kind, anomaly);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = cfg.out_dir.join("CHAOS.json");
    std::fs::write(&path, &json).expect("write CHAOS.json");
    eprintln!("chaos: wrote {}", path.display());
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_wire_report_is_consistent() {
        let cfg = ExperimentConfig {
            out_dir: std::env::temp_dir().join("tdp-wire-bench-test"),
            ..ExperimentConfig::quick()
        };
        let r = run(&cfg, 8, FrameKind::Planar, false);
        assert_eq!(r.n_machines, 8);
        assert!(
            r.anomaly.is_none(),
            "adaptive sampling is opt-in; the default report must not carry it"
        );
        assert_eq!(r.frame_format, "planar");
        assert_eq!(r.frames_per_window, 8, "steady state: sample frames only");
        assert_eq!(r.decode.units, r.windows * 8);
        assert_eq!(r.fused.units, r.windows * 8);
        assert!(r.decode_frames_per_sec > 0.0);
        assert!(r.fused_vs_in_memory > 0.0);
        assert_eq!(r.corrupt_frames, 0);
        assert_eq!(r.dropped_rows, 0, "lossless default sheds nothing");
        assert!(
            r.bytes_per_frame > 44.0,
            "frames carry payload past the header"
        );
        assert!(r.planar_bytes_per_frame > 44.0 && r.varint_bytes_per_frame > 44.0);
        assert_eq!(
            r.bytes_per_frame, r.planar_bytes_per_frame,
            "selected format is planar, flat field mirrors it"
        );
        assert!(
            r.planar_vs_varint_bytes > 0.0 && r.planar_vs_varint_bytes.is_finite(),
            "A/B size ratio must be reportable, got {}",
            r.planar_vs_varint_bytes
        );
        assert_eq!(
            r.fused_ns_per_machine, r.planar_fused_ns_per_machine,
            "selected format is planar, flat fused field mirrors it"
        );
        for (name, ns) in [
            ("checksum", r.stage_checksum_ns_per_machine),
            ("varint (legacy name)", r.stage_varint_ns_per_machine),
            ("payload planar", r.stage_payload_planar_ns_per_machine),
            ("payload varint", r.stage_payload_varint_ns_per_machine),
            ("health", r.stage_health_ns_per_machine),
            ("extraction", r.stage_extraction_ns_per_machine),
            ("fused varint A/B", r.varint_fused_ns_per_machine),
        ] {
            assert!(
                ns > 0.0 && ns.is_finite(),
                "stage {name} must report a positive budget, got {ns}"
            );
        }
        assert_eq!(
            r.stage_varint_ns_per_machine, r.stage_payload_varint_ns_per_machine,
            "legacy flat field reports the varint leg's own stage even \
             when planar is selected (it used to echo the planar stage)"
        );
    }

    #[test]
    fn varint_selected_report_swaps_the_flat_fields() {
        let cfg = ExperimentConfig {
            out_dir: std::env::temp_dir().join("tdp-wire-bench-test-varint"),
            ..ExperimentConfig::quick()
        };
        let r = run(&cfg, 6, FrameKind::Varint, false);
        assert_eq!(r.frame_format, "varint");
        assert_eq!(r.bytes_per_frame, r.varint_bytes_per_frame);
        assert_eq!(r.fused_ns_per_machine, r.varint_fused_ns_per_machine);
        assert_eq!(
            r.stage_varint_ns_per_machine,
            r.stage_payload_varint_ns_per_machine
        );
        assert!(r.planar_fused_ns_per_machine > 0.0, "A/B still measured");
        assert_eq!(r.corrupt_frames, 0);
    }

    #[test]
    fn small_chaos_run_upholds_the_degradation_contract() {
        let cfg = ExperimentConfig {
            out_dir: std::env::temp_dir().join("tdp-wire-chaos-test"),
            ..ExperimentConfig::quick()
        };
        let r = run_chaos(&cfg, 12, 1234, FrameKind::Planar, false);
        assert_eq!(r.frame_format, "planar");
        assert!(r.anomaly.is_none(), "detector sub-run is opt-in");
        assert!(
            r.faults_injected >= r.windows - 1,
            "1–3 faults per faulted window, got {}",
            r.faults_injected
        );
        assert!(r.machines_affected >= 1);
        assert!(r.all_faults_accounted, "unaccounted fault: {r:?}");
        assert!(r.clean_subset_bit_identical, "clean subset diverged: {r:?}");
        assert!(r.serial_sharded_identical, "paths diverged: {r:?}");
        assert!(r.rows_written > 0);

        // The harness replays deterministically, seed in → verdict out.
        let again = run_chaos(&cfg, 12, 1234, FrameKind::Planar, false);
        assert_eq!(r.faults_injected, again.faults_injected);
        assert_eq!(r.rows_written, again.rows_written);
        assert_eq!(r.rows_quarantined, again.rows_quarantined);
        // A different seed is a different battering.
        let other = run_chaos(&cfg, 12, 4321, FrameKind::Planar, false);
        assert!(other.all_faults_accounted && other.clean_subset_bit_identical);
        // The legacy varint stream degrades under the same contract.
        let varint = run_chaos(&cfg, 12, 1234, FrameKind::Varint, false);
        assert_eq!(varint.frame_format, "varint");
        assert!(varint.all_faults_accounted, "unaccounted fault: {varint:?}");
        assert!(varint.clean_subset_bit_identical && varint.serial_sharded_identical);
    }

    #[test]
    fn anomaly_phase_reports_detection_and_decimation_wins() {
        let cfg = ExperimentConfig {
            out_dir: std::env::temp_dir().join("tdp-wire-bench-test-anomaly"),
            ..ExperimentConfig::quick()
        };
        let r = run(&cfg, 8, FrameKind::Planar, true);
        let a = r.anomaly.as_ref().expect("--anomaly fills the block");
        assert_eq!(a.anomaly_false_positives, 0, "clean fleet stays unflagged");
        assert!(
            a.anomaly_clean_max_z < AnomalyDetector::default().config().threshold,
            "clean z headroom, got {}",
            a.anomaly_clean_max_z
        );
        assert!(a.anomaly_spike_detected, "rate spike must be caught");
        assert!(
            (1..=a.anomaly_detection_bound_windows).contains(&a.anomaly_detection_windows),
            "detection within the decimation bound, got {} of {}",
            a.anomaly_detection_windows,
            a.anomaly_detection_bound_windows
        );
        assert!(a.anomaly_serial_pooled_identical, "detector bit-identity");
        assert_eq!(a.decimation, 4, "detector default grant");
        // 8 machines at decimation 4: exactly 2 transmit per
        // steady-state window; the rest are reconstructed.
        assert_eq!(a.decimation_full_frames_per_window, 8.0);
        assert_eq!(a.decimation_decimated_frames_per_window, 2.0);
        assert!(
            a.decimation_wire_ratio > 2.0,
            "wire bytes must shrink well past half, got {}",
            a.decimation_wire_ratio
        );
        assert!(
            a.decimation_ingest_speedup > 1.0 && a.decimation_ingest_speedup.is_finite(),
            "decimated ingest must be cheaper, got {}",
            a.decimation_ingest_speedup
        );
        // Flattening lands the fields at the report's top level, where
        // the CI assertions read them.
        let json = serde_json::to_string(&r).expect("report serializes");
        assert!(json.contains("\"anomaly_spike_detected\":true"));
        assert!(json.contains("\"decimation_ingest_speedup\":"));
    }

    #[test]
    fn chaos_anomaly_subrun_keeps_detector_bit_identity_under_fire() {
        let cfg = ExperimentConfig {
            out_dir: std::env::temp_dir().join("tdp-wire-chaos-test-anomaly"),
            ..ExperimentConfig::quick()
        };
        let r = run_chaos(&cfg, 12, 1234, FrameKind::Planar, true);
        let a = r.anomaly.as_ref().expect("--anomaly fills the block");
        assert_eq!(a.anomaly_windows, r.windows);
        assert!(a.anomaly_warmed, "24 windows outlast the baseline");
        assert!(
            a.anomaly_serial_pooled_identical,
            "serial and pooled judgement must agree on battered estimates"
        );
        assert!(a.anomaly_max_z.is_finite());
        let json = serde_json::to_string(&r).expect("report serializes");
        assert!(json.contains("\"anomaly_serial_pooled_identical\":true"));
    }
}
