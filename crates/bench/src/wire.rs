//! Wire codec benchmark (`repro --wire N`).
//!
//! Measures the telemetry wire path end-to-end on the same synthetic
//! fleet data as `repro --fleet N` ([`crate::fleet::synthetic_set`]):
//!
//! * **encode** — a persistent [`tdp_wire::WireEncoder`] appending one
//!   steady-state window (a sample frame per machine; layout frames
//!   appear only in the untimed warm-up window, as with any long-lived
//!   producer);
//! * **decode** — walking the window with [`FrameCursor`] +
//!   [`FrameDecoder`]: checksum, varint/delta reconstruction and rate
//!   derivation, rows discarded (the codec cost in isolation);
//! * **fused** — [`tdp_wire::ingest_serial`]: decode straight into the
//!   [`FleetEstimator`]'s batch plus the column evaluation;
//! * **streamed** — [`tdp_wire::stream_window`]: sharded decoders
//!   feeding the batch through bounded SPSC rings (equals fused on a
//!   single-worker pool);
//! * **in-memory** — `FleetEstimator::process_window` on the already
//!   decoded [`SampleSet`]s, measured in the same run as the baseline
//!   the fused path is compared against.
//!
//! The warm-up window asserts the wire paths are bit-identical to the
//! in-memory path before any timing starts. Results land in
//! `BENCH_wire.json`.

use crate::fleet::synthetic_set;
use crate::pipeline::{peak_rss_kb, StageRate};
use crate::ExperimentConfig;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;
use tdp_counters::SampleSet;
use tdp_fleet::FleetEstimator;
use tdp_parallel::WorkerPool;
use tdp_wire::{
    ingest_serial_with, stream_window_with, CursorItem, FrameCursor, FrameDecoder, IngestState,
    StreamConfig, StreamReport, WireEncoder,
};
use trickledown::SystemPowerModel;

/// Full wire benchmark report.
#[derive(Debug, Clone, Serialize)]
pub struct WireReport {
    /// Machines per window.
    pub n_machines: usize,
    /// Windows measured per path.
    pub windows: u64,
    /// Worker-pool concurrency available to the streamed path.
    pub workers: usize,
    /// Decoder shards the streamed path actually used
    /// (`0` = it fell back to the serial fused path).
    pub decoders: usize,
    /// Encoded bytes per steady-state window (sample frames only —
    /// layouts are announced once, in the untimed warm-up window).
    pub bytes_per_window: u64,
    /// Frames per steady-state window (one sample frame per machine).
    pub frames_per_window: u64,
    /// Mean encoded frame size, bytes.
    pub bytes_per_frame: f64,
    /// Encode path; units are frames.
    pub encode: StageRate,
    /// Decode-only path; units are frames.
    pub decode: StageRate,
    /// Fused serial decode→estimate; units are machine-windows.
    pub fused: StageRate,
    /// Pool-sharded streaming decode→estimate; units are machine-windows.
    pub streamed: StageRate,
    /// In-memory `process_window` baseline; units are machine-windows.
    pub in_memory: StageRate,
    /// Headline: frames decoded per second (decode-only path).
    pub decode_frames_per_sec: f64,
    /// Nanoseconds per machine-estimate, fused wire path.
    pub fused_ns_per_machine: f64,
    /// Nanoseconds per machine-estimate, streamed wire path.
    pub streamed_ns_per_machine: f64,
    /// Nanoseconds per machine-estimate, in-memory baseline.
    pub in_memory_ns_per_machine: f64,
    /// Fused wire cost relative to the in-memory baseline
    /// (1.0 = free codec; the ISSUE target is ≤ 2.0).
    pub fused_vs_in_memory: f64,
    /// Corrupt frames the streamed path saw (must be 0 on clean input).
    pub corrupt_frames: u64,
    /// Rows shed under backpressure (0 in the default lossless mode).
    pub dropped_rows: u64,
    /// Full-ring events decoder shards waited on.
    pub backpressure_events: u64,
    /// Peak resident set (VmHWM), kilobytes; 0 when unavailable.
    pub peak_rss_kb: u64,
}

/// Appends one window of `sets` to the persistent encoder and drains
/// the bytes. Steady state: the encoder's layout memory means layout
/// frames appear only in the first window (or when a machine's PMU
/// programming changes), exactly as a long-lived producer behaves.
fn encode_window(enc: &mut WireEncoder, sets: &[SampleSet]) -> Vec<u8> {
    for (m, set) in sets.iter().enumerate() {
        enc.push_sample_set(m as u64, set)
            .expect("synthetic sets encode");
    }
    enc.take_bytes()
}

/// Decodes every frame in `buf`, discarding rows: the codec cost with
/// no estimator behind it. Returns the frame count. The decoder
/// persists so sample-only steady-state windows resolve their layouts.
fn decode_only(dec: &mut FrameDecoder, buf: &[u8]) -> u64 {
    let mut cursor = FrameCursor::new(buf);
    let mut frames = 0u64;
    while let Some(item) = cursor.next() {
        if let CursorItem::Frame { start, header } = item {
            let decoded = dec
                .decode_frame(&header, cursor.payload(start, &header))
                .expect("clean stream decodes");
            black_box(&decoded);
            frames += 1;
        }
    }
    frames
}

/// Runs all paths over the same windows and assembles the report.
///
/// # Panics
///
/// Panics if a wire path's estimates are not bit-identical to the
/// in-memory baseline — that is the codec's core contract and a run
/// that breaks it must not report numbers.
pub fn run(cfg: &ExperimentConfig, n_machines: usize) -> WireReport {
    let n_machines = n_machines.max(1);
    // Encoding dominates setup; fewer windows than the fleet bench
    // still average out scheduler noise because each window does
    // 5 passes over the same buffer.
    let windows: u64 = (262_144 / n_machines as u64).clamp(8, 256);
    let model = SystemPowerModel::paper();
    let pool = WorkerPool::global();
    let stream_cfg = StreamConfig::default();

    let mut fused = FleetEstimator::with_capacity(model.clone(), n_machines);
    let mut streamed = FleetEstimator::with_capacity(model.clone(), n_machines);
    let mut in_memory = FleetEstimator::with_capacity(model.clone(), n_machines);
    let mut enc = WireEncoder::new();
    let mut decode_state = FrameDecoder::new();
    let mut fused_state = IngestState::new();
    let mut stream_state = IngestState::new();

    let mut sets: Vec<SampleSet> = Vec::with_capacity(n_machines);
    let (mut enc_secs, mut dec_secs, mut fused_secs, mut str_secs, mut mem_secs) =
        (0.0f64, 0.0, 0.0, 0.0, 0.0);
    let mut stream_totals = StreamReport::default();
    let mut decoders_used = 0usize;
    let (mut bytes_per_window, mut frames_per_window) = (0u64, 0u64);

    for warmup in [true, false] {
        let measured_windows = if warmup { 1 } else { windows };
        for w in 0..measured_windows {
            let window = if warmup { u64::MAX } else { w ^ cfg.seed };
            sets.clear();
            sets.extend((0..n_machines).map(|m| synthetic_set(m, window)));

            let start = Instant::now();
            let buf = encode_window(&mut enc, &sets);
            let enc_elapsed = start.elapsed().as_secs_f64();
            bytes_per_window = buf.len() as u64;

            // Rotate path order so cache-position bias averages out.
            let (mut dec_elapsed, mut fused_elapsed, mut str_elapsed, mut mem_elapsed) =
                (0.0f64, 0.0, 0.0, 0.0);
            for step in 0..4 {
                match (step + w as usize) % 4 {
                    0 => {
                        let start = Instant::now();
                        frames_per_window = decode_only(&mut decode_state, &buf);
                        dec_elapsed = start.elapsed().as_secs_f64();
                    }
                    1 => {
                        let start = Instant::now();
                        let rep =
                            ingest_serial_with(&mut fused_state, &buf, n_machines, &mut fused);
                        let est = fused.estimate();
                        fused_elapsed = start.elapsed().as_secs_f64();
                        assert_eq!(rep.corrupt_frames, 0, "clean stream");
                        assert_eq!(rep.unknown_layout_frames, 0, "layouts persist");
                        black_box(est.fleet_total());
                    }
                    2 => {
                        let start = Instant::now();
                        let rep = stream_window_with(
                            &mut stream_state,
                            pool,
                            &stream_cfg,
                            &buf,
                            n_machines,
                            &mut streamed,
                        );
                        let est = streamed.estimate();
                        str_elapsed = start.elapsed().as_secs_f64();
                        decoders_used = rep.decoders;
                        if !warmup {
                            stream_totals.absorb(&rep);
                        }
                        black_box(est.fleet_total());
                    }
                    _ => {
                        let start = Instant::now();
                        let est = in_memory.process_window(&sets);
                        mem_elapsed = start.elapsed().as_secs_f64();
                        black_box(est.fleet_total());
                    }
                }
            }

            if warmup {
                // The codec's contract, asserted on untimed data: both
                // wire paths bit-identical to in-memory ingestion.
                let mem = in_memory.estimates();
                for (name, wire_est) in [
                    ("fused", fused.estimates()),
                    ("streamed", streamed.estimates()),
                ] {
                    for (a, b) in wire_est.total().iter().zip(mem.total()) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{name} wire path diverged from in-memory ingestion"
                        );
                    }
                }
            } else {
                enc_secs += enc_elapsed;
                dec_secs += dec_elapsed;
                fused_secs += fused_elapsed;
                str_secs += str_elapsed;
                mem_secs += mem_elapsed;
            }
        }
    }

    let machine_units = windows * n_machines as u64;
    let frame_units = windows * frames_per_window;
    let encode_rate = StageRate::new(frame_units, enc_secs);
    let decode_rate = StageRate::new(frame_units, dec_secs);
    let fused_rate = StageRate::new(machine_units, fused_secs);
    let streamed_rate = StageRate::new(machine_units, str_secs);
    let in_memory_rate = StageRate::new(machine_units, mem_secs);
    WireReport {
        n_machines,
        windows,
        workers: pool.workers(),
        decoders: decoders_used,
        bytes_per_window,
        frames_per_window,
        bytes_per_frame: bytes_per_window as f64 / frames_per_window.max(1) as f64,
        decode_frames_per_sec: decode_rate.per_sec,
        fused_ns_per_machine: fused_secs * 1e9 / machine_units as f64,
        streamed_ns_per_machine: str_secs * 1e9 / machine_units as f64,
        in_memory_ns_per_machine: mem_secs * 1e9 / machine_units as f64,
        fused_vs_in_memory: fused_secs / mem_secs,
        encode: encode_rate,
        decode: decode_rate,
        fused: fused_rate,
        streamed: streamed_rate,
        in_memory: in_memory_rate,
        corrupt_frames: stream_totals.corrupt_frames,
        dropped_rows: stream_totals.dropped_rows,
        backpressure_events: stream_totals.backpressure_events,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Runs the benchmark, writes `BENCH_wire.json` under the output
/// directory and returns the rendered JSON.
///
/// # Panics
///
/// Panics if the output directory is unwritable (consistent with the
/// rest of the repro harness).
pub fn run_and_write(cfg: &ExperimentConfig, n_machines: usize) -> String {
    let report = run(cfg, n_machines);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = cfg.out_dir.join("BENCH_wire.json");
    std::fs::write(&path, &json).expect("write BENCH_wire.json");
    eprintln!("bench: wrote {}", path.display());
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_wire_report_is_consistent() {
        let cfg = ExperimentConfig {
            out_dir: std::env::temp_dir().join("tdp-wire-bench-test"),
            ..ExperimentConfig::quick()
        };
        let r = run(&cfg, 8);
        assert_eq!(r.n_machines, 8);
        assert_eq!(r.frames_per_window, 8, "steady state: sample frames only");
        assert_eq!(r.decode.units, r.windows * 8);
        assert_eq!(r.fused.units, r.windows * 8);
        assert!(r.decode_frames_per_sec > 0.0);
        assert!(r.fused_vs_in_memory > 0.0);
        assert_eq!(r.corrupt_frames, 0);
        assert_eq!(r.dropped_rows, 0, "lossless default sheds nothing");
        assert!(
            r.bytes_per_frame > 44.0,
            "frames carry payload past the header"
        );
    }
}
