//! Property-based tests for the model library's invariants.

use proptest::prelude::*;
use tdp_simsys::os::{ProcessId, SchedDelta};
use trickledown::{
    CpuPowerModel, CpuRates, PhaseConfig, PhaseDetector, PowerEstimate, ProcessEnergyLedger,
    SubsystemPowerModel as _, SystemPowerModel, SystemSample,
};

fn sample_from(rates: Vec<(f64, f64)>) -> SystemSample {
    SystemSample {
        time_ms: 1000,
        window_ms: 1000,
        per_cpu: rates
            .into_iter()
            .map(|(active, upc)| CpuRates {
                active_frac: active,
                fetched_upc: upc,
                ..CpuRates::default()
            })
            .collect(),
    }
}

proptest! {
    /// Equation 1 is monotone: more active time or more uops never
    /// lowers predicted CPU power (coefficients are positive).
    #[test]
    fn cpu_model_is_monotone(
        active in 0.0f64..1.0,
        upc in 0.0f64..3.0,
        d_active in 0.0f64..0.2,
        d_upc in 0.0f64..0.5,
    ) {
        let m = CpuPowerModel::paper();
        let base = m.predict(&sample_from(vec![(active, upc)]));
        let more = m.predict(&sample_from(vec![
            ((active + d_active).min(1.0), upc + d_upc),
        ]));
        prop_assert!(more >= base - 1e-12);
    }

    /// Per-CPU attribution always sums to the subsystem prediction.
    #[test]
    fn attribution_is_a_partition(
        rates in prop::collection::vec((0.0f64..1.0, 0.0f64..3.0), 1..8),
    ) {
        let m = CpuPowerModel::paper();
        let s = sample_from(rates);
        let total = m.predict(&s);
        let parts: f64 = s.per_cpu.iter().map(|c| m.predict_single(c)).sum();
        prop_assert!((total - parts).abs() < 1e-9);
    }

    /// The full-system prediction is positive and bounded for inputs
    /// inside the published models' operating envelope. (Outside it the
    /// paper's quadratics extrapolate wildly — e.g. the disk model's
    /// −1.11e16·x² term goes metres underwater past ~1e-8
    /// interrupts/cycle — which is exactly why the paper stresses
    /// training over "a sufficiently large range of samples", §3.2.1.)
    #[test]
    fn system_prediction_is_bounded(
        rates in prop::collection::vec((0.0f64..1.0, 0.0f64..3.0), 4),
        bus in 0.0f64..2_500.0,
        ints in 0.0f64..8e-9,
    ) {
        let model = SystemPowerModel::paper();
        let mut s = sample_from(rates);
        for c in &mut s.per_cpu {
            c.bus_tx_per_mcycle = bus;
            c.interrupts_per_cycle = ints;
            c.device_interrupts_per_cycle = ints;
            c.disk_interrupts_per_cycle = ints / 2.0;
            c.dma_per_cycle = bus / 1e6;
        }
        let p = model.predict(&s);
        prop_assert!(p.total() > 50.0, "above the idle floor: {}", p.total());
        prop_assert!(p.total() < 2_000.0, "below any physical ceiling");
        for &sub in tdp_counters::Subsystem::ALL {
            prop_assert!(p.get(sub).is_finite());
        }
    }

    /// The energy ledger conserves energy for arbitrary scheduler
    /// deltas: system + per-process == Σ per-CPU predictions.
    #[test]
    fn ledger_conserves_energy(
        rates in prop::collection::vec((0.0f64..1.0, 0.0f64..3.0), 1..5),
        entries in prop::collection::vec(
            (1u64..6, 0usize..5, 0u64..1_000_000),
            0..12,
        ),
    ) {
        let ncpus = rates.len();
        let m = CpuPowerModel::paper();
        let s = sample_from(rates);
        let sched = SchedDelta {
            entries: entries
                .into_iter()
                .filter(|&(_, cpu, _)| cpu < ncpus)
                .map(|(pid, cpu, uops)| (ProcessId(pid), cpu, uops))
                .collect(),
        };
        let mut ledger = ProcessEnergyLedger::new(m);
        ledger.account(&s, &sched);
        let expected: f64 =
            s.per_cpu.iter().map(|c| m.predict_single(c)).sum();
        prop_assert!(
            (ledger.total_energy_j() - expected).abs() < 1e-6,
            "{} vs {}",
            ledger.total_energy_j(),
            expected
        );
    }

    /// Phase segmentation is a partition of the estimate stream: window
    /// counts sum to the input length, and phase time ranges are
    /// ordered and non-overlapping.
    #[test]
    fn phases_partition_the_stream(
        watts in prop::collection::vec(50.0f64..300.0, 1..80),
        threshold in 1.0f64..50.0,
    ) {
        let estimates: Vec<PowerEstimate> = watts
            .iter()
            .enumerate()
            .map(|(t, &w)| PowerEstimate {
                time_ms: t as u64 * 1000,
                watts: tdp_powermeter::SubsystemPower::from_array(
                    [w, 20.0, 30.0, 33.0, 21.6],
                ),
            })
            .collect();
        let phases = PhaseDetector::segment(
            PhaseConfig {
                threshold_w: threshold,
                min_stable_windows: 3,
            },
            &estimates,
        );
        let total: usize = phases.iter().map(|p| p.windows).sum();
        prop_assert_eq!(total, estimates.len());
        for w in phases.windows(2) {
            prop_assert!(w[0].end_ms < w[1].start_ms);
        }
    }
}
