//! Model inputs: per-cycle event rates extracted from counter samples.
//!
//! Every model input is a *rate per cycle* (or per mega-cycle), never a
//! raw count: the paper combines the cycles metric "with most other
//! metrics to create per cycle metrics. This corrects for slight
//! differences in sampling rate" (§3.3). This module is the single place
//! that conversion happens.

use serde::{Deserialize, Serialize};
use tdp_counters::{PerfEvent, SampleSet};

/// Per-cycle event rates for one CPU over one sampling window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CpuRates {
    /// Fraction of cycles not halted (1 − halted/cycles): the
    /// `PercentActive` of Equation 1.
    pub active_frac: f64,
    /// Fetched uops per cycle.
    pub fetched_upc: f64,
    /// L3 load misses per cycle (Equation 2's input).
    pub l3_load_misses: f64,
    /// All-agent bus transactions per **mega**cycle (Equation 3's
    /// input; the paper reports this one per Mcycle).
    pub bus_tx_per_mcycle: f64,
    /// DMA/other bus transactions per cycle (Equation 4's second
    /// input).
    pub dma_per_cycle: f64,
    /// Interrupts serviced per cycle, all sources.
    pub interrupts_per_cycle: f64,
    /// Device (non-timer) interrupts per cycle — Equation 5's input.
    /// The periodic OS timer fires at a constant rate and carries no
    /// I/O information; `/proc/interrupts` attribution separates it out
    /// (§3.3 "Interrupts").
    pub device_interrupts_per_cycle: f64,
    /// Disk-controller interrupts per cycle (Equation 4's first input).
    pub disk_interrupts_per_cycle: f64,
    /// TLB misses per cycle.
    pub tlb_per_cycle: f64,
    /// Uncacheable accesses per cycle.
    pub uncacheable_per_cycle: f64,
}

/// One sampling window's model inputs, for every CPU.
///
/// # Example
///
/// ```
/// use tdp_simsys::{Machine, MachineConfig};
/// use trickledown::SystemSample;
///
/// let mut machine = Machine::new(MachineConfig::default());
/// for _ in 0..1000 {
///     machine.tick();
/// }
/// let sample = SystemSample::from_sample_set(&machine.read_counters());
/// assert_eq!(sample.per_cpu.len(), 4);
/// // An idle machine is almost entirely halted.
/// assert!(sample.per_cpu[0].active_frac < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSample {
    /// Simulated time at the end of the window, ms.
    pub time_ms: u64,
    /// Window length, ms.
    pub window_ms: u64,
    /// Rates per CPU.
    pub per_cpu: Vec<CpuRates>,
}

impl SystemSample {
    /// Extracts rates from a raw counter sample set.
    ///
    /// Missing events (not programmed on the bank) yield rate 0 — models
    /// that need them will simply see no contribution, which matches a
    /// PMU configured without those events.
    pub fn from_sample_set(set: &SampleSet) -> Self {
        let per_cpu = set
            .per_cpu
            .iter()
            .map(|s| {
                let cycles = s.count(PerfEvent::Cycles).unwrap_or(0).max(1) as f64;
                let rate = |e: PerfEvent| s.count(e).map(|n| n as f64 / cycles).unwrap_or(0.0);
                let halted = rate(PerfEvent::HaltedCycles);
                CpuRates {
                    active_frac: (1.0 - halted).clamp(0.0, 1.0),
                    fetched_upc: rate(PerfEvent::FetchedUops),
                    l3_load_misses: rate(PerfEvent::L3LoadMisses),
                    bus_tx_per_mcycle: rate(PerfEvent::BusTransactionsAll) * 1e6,
                    dma_per_cycle: rate(PerfEvent::DmaOtherBusTransactions),
                    interrupts_per_cycle: rate(PerfEvent::InterruptsTotal),
                    device_interrupts_per_cycle: (rate(PerfEvent::InterruptsTotal)
                        - rate(PerfEvent::TimerInterrupts))
                    .max(0.0),
                    disk_interrupts_per_cycle: rate(PerfEvent::DiskInterrupts),
                    tlb_per_cycle: rate(PerfEvent::TlbMisses),
                    uncacheable_per_cycle: rate(PerfEvent::UncacheableAccesses),
                }
            })
            .collect();
        Self {
            time_ms: set.time_ms,
            window_ms: set.window_ms,
            per_cpu,
        }
    }

    /// Number of CPUs.
    pub fn num_cpus(&self) -> usize {
        self.per_cpu.len()
    }

    /// Sum of a per-CPU rate over all CPUs.
    pub fn sum<F: Fn(&CpuRates) -> f64>(&self, f: F) -> f64 {
        self.per_cpu.iter().map(f).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_counters::{CounterSample, CpuId, InterruptSnapshot};

    fn set_with(counts: Vec<(PerfEvent, u64)>) -> SampleSet {
        SampleSet {
            time_ms: 1000,
            window_ms: 1000,
            seq: 0,
            per_cpu: vec![CounterSample::new(CpuId::new(0), 0, counts)],
            interrupts: InterruptSnapshot::default(),
        }
    }

    #[test]
    fn rates_divide_by_cycles() {
        let set = set_with(vec![
            (PerfEvent::Cycles, 2_000_000_000),
            (PerfEvent::HaltedCycles, 500_000_000),
            (PerfEvent::FetchedUops, 3_000_000_000),
            (PerfEvent::BusTransactionsAll, 20_000_000),
        ]);
        let s = SystemSample::from_sample_set(&set);
        let c = &s.per_cpu[0];
        assert!((c.active_frac - 0.75).abs() < 1e-12);
        assert!((c.fetched_upc - 1.5).abs() < 1e-12);
        assert!((c.bus_tx_per_mcycle - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn missing_events_are_zero_rates() {
        let set = set_with(vec![(PerfEvent::Cycles, 1_000)]);
        let s = SystemSample::from_sample_set(&set);
        assert_eq!(s.per_cpu[0].fetched_upc, 0.0);
        assert_eq!(s.per_cpu[0].interrupts_per_cycle, 0.0);
        assert_eq!(s.per_cpu[0].active_frac, 1.0, "no halted counter ⇒ active");
    }

    #[test]
    fn zero_cycles_does_not_divide_by_zero() {
        let set = set_with(vec![(PerfEvent::Cycles, 0), (PerfEvent::FetchedUops, 5)]);
        let s = SystemSample::from_sample_set(&set);
        assert!(s.per_cpu[0].fetched_upc.is_finite());
    }

    #[test]
    fn sum_adds_across_cpus() {
        let mk = |n| {
            CounterSample::new(
                CpuId::new(n),
                0,
                vec![(PerfEvent::Cycles, 1_000), (PerfEvent::FetchedUops, 1_500)],
            )
        };
        let set = SampleSet {
            time_ms: 0,
            window_ms: 1000,
            seq: 0,
            per_cpu: vec![mk(0), mk(1)],
            interrupts: InterruptSnapshot::default(),
        };
        let s = SystemSample::from_sample_set(&set);
        assert!((s.sum(|c| c.fetched_upc) - 3.0).abs() < 1e-12);
    }
}
