//! Validation and characterisation reports (the paper's Tables 1–4).

use crate::models::SystemPowerModel;
use crate::testbed::Trace;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use tdp_counters::Subsystem;
use tdp_modeling::metrics::{error_summary, ErrorSummary};
use tdp_modeling::OnlineStats;
use tdp_workloads::{Workload, WorkloadClass};

/// Per-workload, per-subsystem model error (one row of Table 3/4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadErrors {
    /// The workload validated.
    pub workload: Workload,
    /// Error summaries ordered as [`Subsystem::ALL`].
    pub per_subsystem: [ErrorSummary; 5],
}

impl WorkloadErrors {
    /// The Equation-6 average error for one subsystem, percent.
    pub fn error_pct(&self, s: Subsystem) -> f64 {
        self.per_subsystem[s.index()].average_error_pct
    }
}

/// The full validation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// One row per validated workload.
    pub rows: Vec<WorkloadErrors>,
}

impl ValidationReport {
    /// Validates `model` against every trace, producing one row per
    /// workload.
    ///
    /// All errors are plain Equation-6 relative errors against measured
    /// watts, matching the convention of the paper's Tables 3 and 4
    /// (the disk DC-offset-adjusted error appears only in the Figure-6
    /// discussion; [`error_summary_with_offset`] serves that use).
    pub fn validate(model: &SystemPowerModel, traces: &[Trace]) -> Self {
        let rows = traces
            .iter()
            .filter(|t| !t.is_empty())
            .map(|trace| {
                let per_subsystem = Subsystem::ALL
                    .iter()
                    .map(|&s| {
                        let modeled: Vec<f64> = trace
                            .records
                            .iter()
                            .map(|r| model.predict_subsystem(s, &r.input))
                            .collect();
                        let measured = trace.measured(s);
                        error_summary(&modeled, &measured)
                    })
                    .collect::<Vec<_>>()
                    .try_into()
                    .expect("exactly five subsystems");
                WorkloadErrors {
                    workload: trace.workload,
                    per_subsystem,
                }
            })
            .collect();
        Self { rows }
    }

    /// Mean error per subsystem over the workloads of `class`
    /// (the "Integer Average" / "FP Average" rows). `None` selects all
    /// workloads.
    pub fn class_average(&self, class: Option<WorkloadClass>) -> [f64; 5] {
        let mut out = [0.0; 5];
        for (i, &s) in Subsystem::ALL.iter().enumerate() {
            let mut stats = OnlineStats::new();
            for row in &self.rows {
                if class.is_none_or(|c| {
                    row.workload.class() == c
                        || row.workload.class() == WorkloadClass::Idle
                            && c == WorkloadClass::Integer
                }) {
                    stats.push(row.error_pct(s));
                }
            }
            out[i] = stats.mean();
        }
        out
    }

    /// Renders the report as a GitHub-flavoured markdown table (for
    /// EXPERIMENTS.md-style documents).
    pub fn render_markdown(&self) -> String {
        let mut out = String::from(
            "| workload | cpu | chipset | memory | io | disk |\n|---|---|---|---|---|---|\n",
        );
        let order = [
            Subsystem::Cpu,
            Subsystem::Chipset,
            Subsystem::Memory,
            Subsystem::Io,
            Subsystem::Disk,
        ];
        for row in &self.rows {
            let _ = write!(out, "| {} ", row.workload.name());
            for s in order {
                let _ = write!(out, "| {:.2}% ", row.error_pct(s));
            }
            out.push_str("|\n");
        }
        let avg = self.class_average(None);
        let _ = write!(out, "| **avg** ");
        for s in order {
            let _ = write!(out, "| **{:.2}%** ", avg[s.index()]);
        }
        out.push_str("|\n");
        out
    }

    /// Renders the report with the paper's ± error standard deviations
    /// (the second figure in each Table 3/4 average cell).
    pub fn render_with_std(&self) -> String {
        let mut out = String::new();
        let order = [
            Subsystem::Cpu,
            Subsystem::Chipset,
            Subsystem::Memory,
            Subsystem::Io,
            Subsystem::Disk,
        ];
        let _ = writeln!(
            out,
            "{:<10} {:>16} {:>16} {:>16} {:>16} {:>16}",
            "workload", "cpu", "chipset", "memory", "io", "disk"
        );
        for row in &self.rows {
            let _ = write!(out, "{:<10}", row.workload.name());
            for s in order {
                let e = &row.per_subsystem[s.index()];
                let _ = write!(
                    out,
                    " {:>7.2}% ±{:>5.2}%",
                    e.average_error_pct, e.error_std_dev_pct
                );
            }
            out.push('\n');
        }
        out
    }

    /// Renders the report in the style of the paper's Tables 3 and 4.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "workload", "cpu", "chipset", "memory", "io", "disk"
        );
        let order = [
            Subsystem::Cpu,
            Subsystem::Chipset,
            Subsystem::Memory,
            Subsystem::Io,
            Subsystem::Disk,
        ];
        for row in &self.rows {
            let _ = write!(out, "{:<10}", row.workload.name());
            for s in order {
                let _ = write!(out, " {:>7.2}%", row.error_pct(s));
            }
            out.push('\n');
        }
        for (label, class) in [
            ("int avg", Some(WorkloadClass::Integer)),
            ("fp avg", Some(WorkloadClass::FloatingPoint)),
            ("all avg", None),
        ] {
            let avg = self.class_average(class);
            let _ = write!(out, "{label:<10}");
            for s in order {
                let _ = write!(out, " {:>7.2}%", avg[s.index()]);
            }
            out.push('\n');
        }
        out
    }
}

/// Power characterisation of one workload (one row of Tables 1 and 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPowerRow {
    /// The workload.
    pub workload: Workload,
    /// Mean watts per subsystem, ordered as [`Subsystem::ALL`].
    pub mean_w: [f64; 5],
    /// Standard deviation per subsystem.
    pub std_w: [f64; 5],
    /// Mean total watts.
    pub total_w: f64,
}

/// The Table-1/Table-2 power characterisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerCharacterization {
    /// One row per workload.
    pub rows: Vec<WorkloadPowerRow>,
}

impl PowerCharacterization {
    /// Characterises measured power across traces (no model involved).
    pub fn from_traces(traces: &[Trace]) -> Self {
        let rows = traces
            .iter()
            .filter(|t| !t.is_empty())
            .map(|trace| {
                let mut mean_w = [0.0; 5];
                let mut std_w = [0.0; 5];
                for (i, &s) in Subsystem::ALL.iter().enumerate() {
                    let stats: OnlineStats = trace.measured(s).into_iter().collect();
                    mean_w[i] = stats.mean();
                    std_w[i] = stats.population_std_dev();
                }
                let total: OnlineStats = trace.measured_total().into_iter().collect();
                WorkloadPowerRow {
                    workload: trace.workload,
                    mean_w,
                    std_w,
                    total_w: total.mean(),
                }
            })
            .collect();
        Self { rows }
    }

    /// Renders mean watts (Table 1 style).
    pub fn render_means(&self) -> String {
        self.render_inner(false)
    }

    /// Renders standard deviations (Table 2 style).
    pub fn render_std_devs(&self) -> String {
        self.render_inner(true)
    }

    /// Renders mean watts as a GitHub-flavoured markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from(
            "| workload | cpu | chipset | memory | io | disk | total |\n|---|---|---|---|---|---|---|\n",
        );
        let order = [
            Subsystem::Cpu,
            Subsystem::Chipset,
            Subsystem::Memory,
            Subsystem::Io,
            Subsystem::Disk,
        ];
        for row in &self.rows {
            let _ = write!(out, "| {} ", row.workload.name());
            for s in order {
                let _ = write!(out, "| {:.2} ", row.mean_w[s.index()]);
            }
            let _ = writeln!(out, "| {:.1} |", row.total_w);
        }
        out
    }

    fn render_inner(&self, std: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "workload", "cpu", "chipset", "memory", "io", "disk", "total"
        );
        let order = [
            Subsystem::Cpu,
            Subsystem::Chipset,
            Subsystem::Memory,
            Subsystem::Io,
            Subsystem::Disk,
        ];
        for row in &self.rows {
            let _ = write!(out, "{:<10}", row.workload.name());
            let mut total = 0.0;
            for s in order {
                let v = if std {
                    row.std_w[s.index()]
                } else {
                    row.mean_w[s.index()]
                };
                total += v;
                let _ = write!(out, " {v:>8.2}");
            }
            if std {
                let _ = write!(out, " {:>8}", "-");
            } else {
                let _ = write!(out, " {total:>8.1}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::capture;
    use tdp_workloads::WorkloadSet;

    fn traces() -> Vec<Trace> {
        vec![
            capture(WorkloadSet::standard(Workload::Idle), 6, 11),
            capture(WorkloadSet::new(Workload::Vortex, 4, 500), 8, 12),
        ]
    }

    #[test]
    fn characterization_shapes() {
        let traces = traces();
        let c = PowerCharacterization::from_traces(&traces);
        assert_eq!(c.rows.len(), 2);
        let idle = &c.rows[0];
        assert!(idle.total_w > 120.0 && idle.total_w < 160.0);
        // vortex burns more CPU than idle.
        assert!(c.rows[1].mean_w[0] > idle.mean_w[0] + 20.0);
        let table = c.render_means();
        assert!(table.contains("vortex"));
        assert!(table.contains("total"));
        let t2 = c.render_std_devs();
        assert!(t2.contains("idle"));
    }

    #[test]
    fn validation_report_runs_and_renders() {
        let traces = traces();
        let model = SystemPowerModel::paper();
        let report = ValidationReport::validate(&model, &traces);
        assert_eq!(report.rows.len(), 2);
        let rendered = report.render();
        assert!(rendered.contains("int avg"));
        assert!(rendered.contains("fp avg"));
        for row in &report.rows {
            for &s in Subsystem::ALL {
                assert!(row.error_pct(s).is_finite());
            }
        }
    }

    #[test]
    fn markdown_renderers_emit_valid_tables() {
        let traces = traces();
        let c = PowerCharacterization::from_traces(&traces);
        let md = c.render_markdown();
        assert!(md.starts_with("| workload |"));
        assert_eq!(
            md.lines().count(),
            2 + c.rows.len(),
            "header + separator + one line per workload"
        );
        let model = SystemPowerModel::paper();
        let report = ValidationReport::validate(&model, &traces);
        let md = report.render_markdown();
        assert!(md.contains("**avg**"));
        assert!(md.lines().all(|l| l.starts_with('|')));
    }

    #[test]
    fn class_average_separates_int_and_fp() {
        let traces = vec![
            capture(WorkloadSet::new(Workload::Vortex, 2, 200), 4, 13),
            capture(WorkloadSet::new(Workload::Mesa, 2, 200), 4, 14),
        ];
        let model = SystemPowerModel::paper();
        let report = ValidationReport::validate(&model, &traces);
        let int_avg = report.class_average(Some(WorkloadClass::Integer));
        let fp_avg = report.class_average(Some(WorkloadClass::FloatingPoint));
        let all = report.class_average(None);
        // All averages are averages of the two rows.
        for i in 0..5 {
            let lo = int_avg[i].min(fp_avg[i]);
            let hi = int_avg[i].max(fp_avg[i]);
            assert!(all[i] >= lo - 1e-9 && all[i] <= hi + 1e-9);
        }
    }
}
