//! **trickledown** — complete-system power estimation from CPU
//! performance events.
//!
//! A from-scratch reproduction of W. L. Bircher and L. K. John,
//! *Complete System Power Estimation: A Trickle-Down Approach Based on
//! Performance Events* (ISPASS 2007). Performance events raised in the
//! processor propagate outward through the machine — the paper's
//! Figure 1:
//!
//! ```text
//!              ┌────────┐  L3 miss / TLB miss / bus txn
//!              │  CPU   │ ───────────────────────────────► Memory
//!              │        │  DMA access / uncacheable access
//!              │        │ ───────────────► Chipset ──────► I/O
//!              │        │  interrupt                        │
//!              │        │ ◄────────────────────────────────┤
//!              └────────┘                          Disk ◄──┘ Network
//! ```
//!
//! Because each off-chip subsystem consumes power in proportion to the
//! event traffic that reaches it, *counters inside the CPU suffice to
//! estimate power everywhere*. This crate implements that idea
//! end-to-end:
//!
//! * [`SystemSample`] — per-cycle event rates extracted from counter
//!   reads ([`tdp_counters::SampleSet`]);
//! * [`models`] — the five subsystem models (Equations 1–5): CPU
//!   (active-fraction + fetched uops), memory (L3-miss and
//!   bus-transaction quadratics), disk (interrupt + DMA quadratic), I/O
//!   (interrupt quadratic), chipset (constant);
//! * [`Calibrator`] — least-squares calibration from high-variation
//!   training traces, following the paper's train-on-one /
//!   validate-on-all discipline;
//! * [`SystemPowerEstimator`] — the online estimator for runtime use;
//! * [`PhaseDetector`] — power-phase segmentation over estimate streams
//!   (the §2.4 extension);
//! * [`ProcessEnergyLedger`] — per-process energy billing from
//!   counter-based estimates plus OS scheduler accounting (§4.2.1);
//! * [`testbed`] — the simulated measurement bench (machine + sense
//!   resistors + sampling/sync), standing in for the paper's 4-way
//!   Pentium 4 Xeon server;
//! * [`ValidationReport`] / [`PowerCharacterization`] — the paper's
//!   Tables 1–4 as data structures with text rendering.
//!
//! # Quickstart
//!
//! ```
//! use tdp_workloads::{Workload, WorkloadSet};
//! use trickledown::{Calibrator, CalibrationSuite, SystemPowerEstimator};
//! use trickledown::testbed::capture;
//!
//! // 1. Calibrate on training traces (tiny ramp for the doctest).
//! let suite = CalibrationSuite::capture(42, 2);
//! let model = Calibrator::new().calibrate(&suite)?;
//!
//! // 2. Estimate power for a workload the model never saw.
//! let trace = capture(WorkloadSet::new(Workload::Vortex, 2, 1000), 6, 43);
//! let mut estimator = SystemPowerEstimator::new(model);
//! for record in &trace.records {
//!     let est = estimator.push(&record.input);
//!     let measured = record.measured.watts.total();
//!     assert!((est.total() - measured).abs() / measured < 0.25);
//! }
//! # Ok::<(), trickledown::CalibrationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
mod calibrate;
mod estimator;
mod input;
pub mod models;
mod phases;
mod pstate;
pub mod testbed;
mod validate;

pub use accounting::ProcessEnergyLedger;
pub use calibrate::{CalibrationError, CalibrationSuite, Calibrator};
pub use estimator::{PowerEstimate, SystemPowerEstimator};
pub use input::{CpuRates, SystemSample};
pub use models::{
    clamp_watts, dynamic_peak_per_cpu, quad_poly, ChipsetPowerModel, CpuPowerModel, DiskPowerModel,
    IoPowerModel, MemoryInput, MemoryPowerModel, SubsystemPowerModel, SystemPowerModel,
};
pub use phases::{PhaseConfig, PhaseDetector, PowerPhase};
pub use pstate::{PStateError, PStateModelSet};
pub use testbed::{Testbed, TestbedConfig, Trace, TraceRecord};
pub use validate::{PowerCharacterization, ValidationReport, WorkloadErrors, WorkloadPowerRow};
