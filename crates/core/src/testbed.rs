//! The measurement testbed: machine + power meter + sampling discipline.
//!
//! A [`Testbed`] wires together the simulated server, the ground-truth
//! power apparatus and the 1 Hz counter-sampling driver with its sync
//! pulses, reproducing the paper's bench (§3.1): the target samples its
//! own counters once per second (with jitter), the acquisition side
//! averages its 10 kHz power samples into the windows delimited by the
//! sync pulses, and the two streams are paired into [`TraceRecord`]s.

use crate::input::SystemSample;
use serde::{Deserialize, Serialize};
use tdp_counters::{SampleSet, SamplerConfig, SamplingDriver, Subsystem, SyncRecorder};
use tdp_powermeter::{PowerMeter, PowerSample, PowerSpec};
use tdp_simsys::{Machine, MachineConfig};
use tdp_workloads::{Workload, WorkloadSet};

/// Testbed configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TestbedConfig {
    /// The simulated server.
    pub machine: MachineConfig,
    /// The component power specification.
    pub power: PowerSpec,
    /// Counter-sampling discipline (default: 1 Hz with ±3 ms jitter).
    pub sampler: SamplerConfig,
}

impl TestbedConfig {
    /// Default configuration with a specific master seed.
    pub fn with_seed(seed: u64) -> Self {
        let mut cfg = Self::default();
        cfg.machine.seed = seed;
        cfg
    }
}

/// One paired observation: counter-derived model inputs and measured
/// power for the same (sync-pulse-delimited) window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Per-cycle model inputs.
    pub input: SystemSample,
    /// The raw counter sample (kept for model-selection experiments).
    pub raw: SampleSet,
    /// Measured (noisy, quantized, averaged) subsystem power.
    pub measured: PowerSample,
}

/// A complete captured run of one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The workload that ran.
    pub workload: Workload,
    /// Paired per-second records, in time order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Model inputs of every record, borrowed.
    ///
    /// The returned vector holds references into the trace (the
    /// per-sample `per_cpu` vectors are *not* cloned); the model `fit`
    /// functions accept either owned or borrowed sample slices.
    pub fn inputs(&self) -> Vec<&SystemSample> {
        self.records.iter().map(|r| &r.input).collect()
    }

    /// Measured watts of one subsystem across the trace.
    pub fn measured(&self, s: Subsystem) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.measured.watts.get(s))
            .collect()
    }

    /// Measured total power across the trace.
    pub fn measured_total(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.measured.watts.total())
            .collect()
    }

    /// The records past the first `warmup`, borrowed (ramp-up
    /// trimming without copying the trace).
    pub fn records_after(&self, warmup: usize) -> &[TraceRecord] {
        &self.records[warmup.min(self.records.len())..]
    }

    /// A copy without the first `warmup` records (ramp-up trimming).
    ///
    /// Allocates a new trace; prefer [`records_after`](Trace::records_after)
    /// when a borrowed view suffices.
    pub fn skip_warmup(&self, warmup: usize) -> Trace {
        Trace {
            workload: self.workload,
            records: self.records.iter().skip(warmup).cloned().collect(),
        }
    }

    /// Serialises the trace to JSON (for archiving captured runs and
    /// sharing calibration data between machines).
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` failures (practically impossible here).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Loads a trace saved with [`to_json`](Trace::to_json).
    ///
    /// # Errors
    ///
    /// Returns the `serde_json` error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// The assembled bench.
#[derive(Debug)]
pub struct Testbed {
    machine: Machine,
    meter: PowerMeter,
    driver: SamplingDriver,
    sync: SyncRecorder,
}

impl Testbed {
    /// Builds a testbed.
    pub fn new(cfg: TestbedConfig) -> Self {
        let machine = Machine::new(cfg.machine);
        let meter = PowerMeter::new(cfg.power, cfg.machine.seed);
        Self {
            machine,
            meter,
            driver: SamplingDriver::new(cfg.sampler),
            sync: SyncRecorder::new(),
        }
    }

    /// Deploys a workload set onto the machine's OS.
    pub fn deploy(&mut self, set: WorkloadSet) {
        set.deploy(&mut self.machine);
    }

    /// The machine (e.g. to spawn custom behaviours).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The sync-pulse record accumulated so far.
    pub fn sync_recorder(&self) -> &SyncRecorder {
        &self.sync
    }

    /// Runs until `seconds` sampling windows have been collected
    /// (nominally one per second, so ~`seconds` of simulated time
    /// modulo jitter). `workload` labels the returned trace.
    pub fn run_seconds(&mut self, workload: Workload, seconds: u64) -> Trace {
        let mut records = Vec::with_capacity(seconds as usize);
        let max_jitter = self.driver.config().max_jitter_ms as i64;
        let period = self.driver.config().period_ms;
        // Hard stop well past the nominal end, in case of pathological
        // jitter configurations.
        let end_ms = self.machine.now_ms() + seconds * period + 10 * period;
        // One activity buffer reused across every tick of the run; the
        // sampling path below (1 Hz) is the only per-window allocation.
        let mut activity = tdp_simsys::TickActivity::empty();
        while records.len() < seconds as usize && self.machine.now_ms() < end_ms {
            self.machine.tick_into(&mut activity);
            self.meter.observe(&activity);
            if let Some(seq) = self.driver.poll(self.machine.now_ms()) {
                self.sync.pulse(seq, self.machine.now_ms());
                let raw = self.machine.read_counters();
                let measured = self.meter.cut_window();
                records.push(TraceRecord {
                    input: SystemSample::from_sample_set(&raw),
                    raw,
                    measured,
                });
                let jitter = self.machine.sample_jitter_ms(max_jitter);
                self.driver.set_next_jitter(jitter);
            }
        }
        Trace { workload, records }
    }
}

/// Convenience: capture a fresh trace of `set` for `seconds`, on a
/// default testbed seeded with `seed`.
///
/// # Example
///
/// ```no_run
/// use tdp_workloads::{Workload, WorkloadSet};
/// use trickledown::testbed::capture;
///
/// let trace = capture(WorkloadSet::standard(Workload::Gcc), 300, 42);
/// assert_eq!(trace.len(), 300);
/// ```
pub fn capture(set: WorkloadSet, seconds: u64, seed: u64) -> Trace {
    let mut bed = Testbed::new(TestbedConfig::with_seed(seed));
    bed.deploy(set);
    bed.run_seconds(set.kind, seconds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_trace_records_once_per_second() {
        let trace = capture(WorkloadSet::standard(Workload::Idle), 5, 1);
        assert_eq!(trace.len(), 5);
        for r in &trace.records {
            // 1 Hz ± 3 ms jitter.
            assert!((997..=1006).contains(&r.measured.window_ms));
            assert_eq!(r.input.num_cpus(), 4);
        }
        let total = trace.measured_total();
        assert!(total.iter().all(|&w| (130.0..150.0).contains(&w)));
    }

    #[test]
    fn counter_and_power_windows_align() {
        let trace = capture(WorkloadSet::standard(Workload::Idle), 4, 2);
        for r in &trace.records {
            assert_eq!(r.raw.time_ms, r.measured.time_ms);
            assert_eq!(r.raw.window_ms, r.measured.window_ms);
        }
    }

    #[test]
    fn traces_are_reproducible() {
        let a = capture(WorkloadSet::new(Workload::Gcc, 2, 1000), 6, 9);
        let b = capture(WorkloadSet::new(Workload::Gcc, 2, 1000), 6, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn skip_warmup_trims_front() {
        let trace = capture(WorkloadSet::standard(Workload::Idle), 5, 3);
        let trimmed = trace.skip_warmup(2);
        assert_eq!(trimmed.len(), 3);
        assert_eq!(trimmed.records[0], trace.records[2]);
    }

    #[test]
    fn trace_json_roundtrip_is_lossless() {
        let trace = capture(WorkloadSet::new(Workload::Mesa, 2, 500), 4, 8);
        let json = trace.to_json().unwrap();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn sync_pulses_cover_every_record() {
        let mut bed = Testbed::new(TestbedConfig::with_seed(5));
        let trace = bed.run_seconds(Workload::Idle, 3);
        assert_eq!(bed.sync_recorder().pulses().len(), trace.len());
    }
}
