//! Model calibration from training traces.
//!
//! The paper's discipline (§3.2.2): "For all subsystems, the power
//! models are trained using a single workload trace that offers high
//! utilization and variation. The validation is then performed using the
//! entire set of workloads." The default recipe mirrors the paper's
//! choices:
//!
//! * **CPU** — eight staggered `gcc` instances (Figure 2's trace);
//! * **memory** — staggered `mcf` (for the Equation-3 bus model; `mesa`
//!   trains the Equation-2 cache-miss variant, Figure 3);
//! * **disk and I/O** — the synthetic DiskLoad (Figures 6–7);
//! * **chipset** — the mean over the training traces (a constant).

use crate::models::{
    ChipsetPowerModel, CpuPowerModel, DiskPowerModel, IoPowerModel, MemoryInput, MemoryPowerModel,
    SystemPowerModel,
};
use crate::testbed::{capture, Trace};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use tdp_counters::Subsystem;
use tdp_modeling::FitError;
use tdp_workloads::{Workload, WorkloadSet};

/// The set of training traces the calibrator consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationSuite {
    /// High-variation CPU trace (paper: 8 × gcc, staggered).
    pub cpu: Trace,
    /// High-utilization memory trace (paper: mcf for the bus model,
    /// mesa for the cache-miss model).
    pub memory: Trace,
    /// Disk/I-O trace (paper: synthetic DiskLoad).
    pub disk_io: Trace,
}

impl CalibrationSuite {
    /// Captures the paper's training recipe on a fresh testbed.
    ///
    /// `ramp_seconds` controls the stagger between instance starts
    /// (paper: 30–60 s); total capture time scales with it. Use small
    /// values in tests, ≥20 s for real calibration.
    pub fn capture(seed: u64, ramp_seconds: u64) -> Self {
        let stagger_ms = ramp_seconds * 1000;
        // Idle lead-in anchors each model's DC term: "Without a
        // sufficiently large range of samples, complex quadratic
        // relationships may appear to be linear" (§3.2.1).
        let delay_ms = (stagger_ms / 2).max(3_000);
        let tail = 4 * ramp_seconds + 20;
        let cpu_set = WorkloadSet::new(Workload::Gcc, 8, stagger_ms).with_delay(delay_ms);
        let mem_set = WorkloadSet::new(Workload::Mcf, 8, stagger_ms).with_delay(delay_ms);
        let disk_set = WorkloadSet::new(Workload::DiskLoad, 4, stagger_ms / 2).with_delay(delay_ms);
        Self {
            cpu: capture(
                cpu_set,
                cpu_set.fully_ramped_ms() / 1000 + tail,
                seed ^ 0x01,
            ),
            memory: capture(
                mem_set,
                mem_set.fully_ramped_ms() / 1000 + tail,
                seed ^ 0x02,
            ),
            disk_io: capture(
                disk_set,
                disk_set.fully_ramped_ms() / 1000 + tail.max(40),
                seed ^ 0x03,
            ),
        }
    }
}

/// Error from [`Calibrator::calibrate`]: which subsystem failed, and
/// why.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationError {
    /// The subsystem whose fit failed.
    pub subsystem: Subsystem,
    /// The underlying fit error.
    pub source: FitError,
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "calibrating the {} model failed: {}",
            self.subsystem, self.source
        )
    }
}

impl Error for CalibrationError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.source)
    }
}

/// Fits a [`SystemPowerModel`] from a [`CalibrationSuite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Calibrator {
    memory_input: MemoryInput,
}

impl Default for Calibrator {
    fn default() -> Self {
        Self::new()
    }
}

impl Calibrator {
    /// A calibrator using the paper's final (Equation-3,
    /// bus-transaction) memory model.
    pub fn new() -> Self {
        Self {
            memory_input: MemoryInput::BusTransactions,
        }
    }

    /// Selects which event feeds the memory model (Equation 2 vs 3).
    pub fn memory_input(mut self, input: MemoryInput) -> Self {
        self.memory_input = input;
        self
    }

    /// Fits all five subsystem models.
    ///
    /// # Errors
    ///
    /// Returns the first [`CalibrationError`] encountered; a training
    /// trace without variation in its subsystem's input (e.g. an idle
    /// disk trace) cannot be fitted.
    pub fn calibrate(
        &self,
        suite: &CalibrationSuite,
    ) -> Result<SystemPowerModel, CalibrationError> {
        let err =
            |subsystem: Subsystem| move |source: FitError| CalibrationError { subsystem, source };

        let cpu = CpuPowerModel::fit(&suite.cpu.inputs(), &suite.cpu.measured(Subsystem::Cpu))
            .map_err(err(Subsystem::Cpu))?;

        let memory = MemoryPowerModel::fit(
            self.memory_input,
            &suite.memory.inputs(),
            &suite.memory.measured(Subsystem::Memory),
        )
        .map_err(err(Subsystem::Memory))?;

        let disk = DiskPowerModel::fit(
            &suite.disk_io.inputs(),
            &suite.disk_io.measured(Subsystem::Disk),
        )
        .map_err(err(Subsystem::Disk))?;

        let io = IoPowerModel::fit(
            &suite.disk_io.inputs(),
            &suite.disk_io.measured(Subsystem::Io),
        )
        .map_err(err(Subsystem::Io))?;

        let chipset_watts: Vec<f64> = suite
            .cpu
            .measured(Subsystem::Chipset)
            .into_iter()
            .chain(suite.memory.measured(Subsystem::Chipset))
            .chain(suite.disk_io.measured(Subsystem::Chipset))
            .collect();
        let chipset = ChipsetPowerModel::fit(&chipset_watts).map_err(err(Subsystem::Chipset))?;

        Ok(SystemPowerModel {
            cpu,
            memory,
            disk,
            io,
            chipset,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::SubsystemPowerModel as _;
    use crate::testbed::capture;

    // One small end-to-end calibration shared by the tests below (it is
    // the expensive part).
    fn calibrated() -> (CalibrationSuite, SystemPowerModel) {
        let suite = CalibrationSuite::capture(77, 3);
        let model = Calibrator::new().calibrate(&suite).expect("calibrates");
        (suite, model)
    }

    #[test]
    fn end_to_end_calibration_produces_sane_coefficients() {
        let (suite, model) = calibrated();
        // DC terms land near the physical idle powers.
        assert!(
            (5.0..14.0).contains(&model.cpu.halt_w),
            "halt_w {}",
            model.cpu.halt_w
        );
        assert!(
            (25.0..45.0).contains(&model.cpu.active_w),
            "active_w {}",
            model.cpu.active_w
        );
        assert!(model.cpu.upc_w > 0.5, "upc_w {}", model.cpu.upc_w);
        assert!(
            (24.0..34.0).contains(&model.memory.background_w),
            "memory background {}",
            model.memory.background_w
        );
        assert!(
            (19.0..24.0).contains(&model.disk.dc_w),
            "disk dc {}",
            model.disk.dc_w
        );
        assert!(
            (30.0..36.0).contains(&model.io.dc_w),
            "io dc {}",
            model.io.dc_w
        );
        assert!(
            (19.0..23.0).contains(&model.chipset.constant_w),
            "chipset {}",
            model.chipset.constant_w
        );

        // The fitted model predicts its own training traces decently.
        let cpu_pred: Vec<f64> = suite
            .cpu
            .inputs()
            .into_iter()
            .map(|s| model.cpu.predict(s))
            .collect();
        let err =
            tdp_modeling::metrics::average_error(&cpu_pred, &suite.cpu.measured(Subsystem::Cpu));
        assert!(err < 10.0, "cpu training error {err}%");
    }

    #[test]
    fn calibration_is_deterministic() {
        let a = CalibrationSuite::capture(5, 2);
        let b = CalibrationSuite::capture(5, 2);
        assert_eq!(a, b);
        let ma = Calibrator::new().calibrate(&a).unwrap();
        let mb = Calibrator::new().calibrate(&b).unwrap();
        assert_eq!(ma, mb);
    }

    #[test]
    fn idle_only_suite_fails_with_named_subsystem() {
        let idle = capture(tdp_workloads::WorkloadSet::standard(Workload::Idle), 8, 4);
        let suite = CalibrationSuite {
            cpu: idle.clone(),
            memory: idle.clone(),
            disk_io: idle,
        };
        let err = Calibrator::new().calibrate(&suite).unwrap_err();
        // An idle machine offers no disk or memory variation; whichever
        // subsystem trips first, the error names it.
        assert!(err.to_string().contains(err.subsystem.name()));
        assert!(matches!(err.source, FitError::SingularSystem));
    }
}
