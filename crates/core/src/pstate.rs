//! Per-P-state model sets for DVFS-capable machines.
//!
//! Equation 1's coefficients embed the voltage of the operating point
//! they were fitted at (power goes with `f·V²`, and the counters only
//! see `f` through the cycles metric), so a machine that scales
//! frequency needs **one CPU model per P-state** — the natural
//! extension of the paper's single-point calibration to the DVFS
//! setting its §2.3 motivates. This module stores fitted models keyed by
//! frequency scale and answers lookups for the active operating point,
//! including the governor's killer query: *what would the power be at a
//! different P-state?*

use crate::input::SystemSample;
use crate::models::CpuPowerModel;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error returned by [`PStateModelSet`] constructors and lookups.
#[derive(Debug, Clone, PartialEq)]
pub enum PStateError {
    /// No models were supplied.
    Empty,
    /// A frequency scale was outside `(0, 1]` or non-finite.
    InvalidScale(f64),
    /// Two entries share (within tolerance) the same scale.
    DuplicateScale(f64),
}

impl fmt::Display for PStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PStateError::Empty => write!(f, "a P-state set needs at least one model"),
            PStateError::InvalidScale(s) => {
                write!(f, "frequency scale {s} is outside (0, 1]")
            }
            PStateError::DuplicateScale(s) => {
                write!(f, "duplicate P-state at scale {s}")
            }
        }
    }
}

impl Error for PStateError {}

/// A set of Equation-1 models, one per DVFS operating point.
///
/// # Example
///
/// ```
/// use trickledown::{CpuPowerModel, PStateModelSet};
///
/// let nominal = CpuPowerModel::paper();
/// // A scaled-down point burns less per event (fitted on real traces
/// // in practice; synthesised here).
/// let low = CpuPowerModel { halt_w: 4.6, active_w: 17.9, upc_w: 2.2 };
/// let set = PStateModelSet::new(vec![(1.0, nominal), (0.5, low)])?;
///
/// assert_eq!(set.model_at(1.0).halt_w, 9.25);
/// assert_eq!(set.model_at(0.5).halt_w, 4.6);
/// // Nearest lookup for unlisted points:
/// assert_eq!(set.model_at(0.55).halt_w, 4.6);
/// assert_eq!(set.scales(), &[0.5, 1.0]);
/// # Ok::<(), trickledown::PStateError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PStateModelSet {
    /// `(scale, model)` sorted ascending by scale.
    entries: Vec<(f64, CpuPowerModel)>,
}

impl PStateModelSet {
    /// Builds a set from `(frequency scale, fitted model)` pairs.
    ///
    /// # Errors
    ///
    /// See [`PStateError`].
    pub fn new(mut entries: Vec<(f64, CpuPowerModel)>) -> Result<Self, PStateError> {
        if entries.is_empty() {
            return Err(PStateError::Empty);
        }
        for &(s, _) in &entries {
            if !(s.is_finite() && s > 0.0 && s <= 1.0) {
                return Err(PStateError::InvalidScale(s));
            }
        }
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scales"));
        for w in entries.windows(2) {
            if (w[1].0 - w[0].0).abs() < 1e-6 {
                return Err(PStateError::DuplicateScale(w[0].0));
            }
        }
        Ok(Self { entries })
    }

    /// The available scales, ascending.
    pub fn scales(&self) -> Vec<f64> {
        self.entries.iter().map(|&(s, _)| s).collect()
    }

    /// The model for the P-state nearest `scale`.
    pub fn model_at(&self, scale: f64) -> &CpuPowerModel {
        let (_, model) = self
            .entries
            .iter()
            .min_by(|a, b| {
                let da = (a.0 - scale).abs();
                let db = (b.0 - scale).abs();
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("set is non-empty");
        model
    }

    /// Predicted CPU-subsystem watts for `sample` at the P-state nearest
    /// `scale`.
    pub fn predict_at(&self, scale: f64, sample: &SystemSample) -> f64 {
        use crate::models::SubsystemPowerModel as _;
        self.model_at(scale).predict(sample)
    }

    /// The governor query: predicted watts at every P-state for the
    /// current window's per-cycle rates (which are approximately
    /// operating-point-invariant). Returns `(scale, watts)` ascending by
    /// scale.
    pub fn forecast(&self, sample: &SystemSample) -> Vec<(f64, f64)> {
        use crate::models::SubsystemPowerModel as _;
        self.entries
            .iter()
            .map(|(s, m)| (*s, m.predict(sample)))
            .collect()
    }

    /// The highest P-state whose forecast stays under `cap_w`, if any.
    pub fn highest_under_cap(&self, sample: &SystemSample, cap_w: f64) -> Option<f64> {
        self.forecast(sample)
            .into_iter()
            .rev() // descending scale
            .find(|&(_, w)| w < cap_w)
            .map(|(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::CpuRates;

    fn model(halt: f64, active: f64, upc: f64) -> CpuPowerModel {
        CpuPowerModel {
            halt_w: halt,
            active_w: active,
            upc_w: upc,
        }
    }

    fn three_states() -> PStateModelSet {
        PStateModelSet::new(vec![
            (1.0, model(9.25, 35.7, 4.31)),
            (0.75, model(6.9, 19.5, 2.4)),
            (0.5, model(4.6, 10.2, 1.3)),
        ])
        .unwrap()
    }

    fn busy_sample() -> SystemSample {
        SystemSample {
            time_ms: 1000,
            window_ms: 1000,
            per_cpu: vec![
                CpuRates {
                    active_frac: 1.0,
                    fetched_upc: 2.0,
                    ..CpuRates::default()
                };
                4
            ],
        }
    }

    #[test]
    fn nearest_lookup_rounds_to_closest_state() {
        let set = three_states();
        assert_eq!(set.model_at(0.9).halt_w, 9.25);
        assert_eq!(set.model_at(0.8).halt_w, 6.9);
        assert_eq!(set.model_at(0.1).halt_w, 4.6);
    }

    #[test]
    fn forecast_is_monotone_in_scale() {
        let set = three_states();
        let f = set.forecast(&busy_sample());
        assert_eq!(f.len(), 3);
        for w in f.windows(2) {
            assert!(w[1].1 > w[0].1, "higher scale, higher power: {f:?}");
        }
    }

    #[test]
    fn highest_under_cap_picks_the_fastest_safe_state() {
        let set = three_states();
        let s = busy_sample();
        let full = set.predict_at(1.0, &s);
        let mid = set.predict_at(0.75, &s);
        // Cap between mid and full: the governor should pick 0.75.
        let cap = (full + mid) / 2.0;
        assert_eq!(set.highest_under_cap(&s, cap), Some(0.75));
        // Cap above everything: run at nominal.
        assert_eq!(set.highest_under_cap(&s, full + 100.0), Some(1.0));
        // Cap below everything: no safe state.
        assert_eq!(set.highest_under_cap(&s, 1.0), None);
    }

    #[test]
    fn constructor_validates() {
        assert_eq!(PStateModelSet::new(vec![]).unwrap_err(), PStateError::Empty);
        assert!(matches!(
            PStateModelSet::new(vec![(1.5, model(1.0, 2.0, 3.0))]),
            Err(PStateError::InvalidScale(_))
        ));
        assert!(matches!(
            PStateModelSet::new(vec![
                (0.5, model(1.0, 2.0, 3.0)),
                (0.5, model(1.0, 2.0, 3.0)),
            ]),
            Err(PStateError::DuplicateScale(_))
        ));
    }

    #[test]
    fn error_messages_are_nonempty() {
        for e in [
            PStateError::Empty,
            PStateError::InvalidScale(2.0),
            PStateError::DuplicateScale(0.5),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
