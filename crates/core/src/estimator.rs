//! Online power estimation.
//!
//! The paper's motivation is *runtime* use: feeding power-management
//! policies without power sensors (§1, §3.3.1). The estimator consumes
//! counter [`SampleSet`]s as they are read and emits per-window
//! [`PowerEstimate`]s, keeping a bounded history for phase analysis and
//! moving averages.

use crate::input::SystemSample;
use crate::models::SystemPowerModel;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use tdp_counters::{SampleSet, Subsystem};
use tdp_powermeter::SubsystemPower;

/// One power estimate for one sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerEstimate {
    /// Simulated/wall time at the end of the window, ms.
    pub time_ms: u64,
    /// Estimated subsystem watts.
    pub watts: SubsystemPower,
}

impl PowerEstimate {
    /// Estimated total system power.
    pub fn total(&self) -> f64 {
        self.watts.total()
    }
}

/// The online estimator.
///
/// # Example
///
/// ```
/// use tdp_simsys::{Machine, MachineConfig};
/// use trickledown::{SystemPowerEstimator, SystemPowerModel};
///
/// let mut machine = Machine::new(MachineConfig::default());
/// let mut estimator = SystemPowerEstimator::new(SystemPowerModel::paper());
///
/// for _ in 0..3 {
///     for _ in 0..1000 { machine.tick(); }
///     let est = estimator.push_sample_set(&machine.read_counters());
///     assert!(est.total() > 100.0);
/// }
/// assert_eq!(estimator.history().count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SystemPowerEstimator {
    model: SystemPowerModel,
    history: VecDeque<PowerEstimate>,
    capacity: usize,
}

impl SystemPowerEstimator {
    /// Creates an estimator with the default history capacity (3600
    /// windows — an hour at 1 Hz).
    pub fn new(model: SystemPowerModel) -> Self {
        Self::with_capacity(model, 3600)
    }

    /// Creates an estimator retaining at most `capacity` estimates.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity ring would make
    /// [`latest`](Self::latest) `None` forever while
    /// [`push`](Self::push) still returned estimates, a silent
    /// contradiction callers are better protected from.
    pub fn with_capacity(model: SystemPowerModel, capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be positive");
        Self {
            model,
            history: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
        }
    }

    /// The model in use.
    pub fn model(&self) -> &SystemPowerModel {
        &self.model
    }

    /// Processes one raw counter read.
    ///
    /// Eviction rule: the history is a bounded FIFO ring. When it
    /// already holds `capacity` estimates, the **oldest** is evicted
    /// *before* the new one is appended, so the ring holds exactly the
    /// most recent `capacity` estimates and never exceeds its bound —
    /// the returned estimate is always the newest retained entry.
    pub fn push_sample_set(&mut self, set: &SampleSet) -> PowerEstimate {
        self.push(&SystemSample::from_sample_set(set))
    }

    /// Processes one pre-extracted sample. Same eviction rule as
    /// [`push_sample_set`](Self::push_sample_set): evict-oldest-first
    /// at `capacity`, then append.
    pub fn push(&mut self, sample: &SystemSample) -> PowerEstimate {
        let est = PowerEstimate {
            time_ms: sample.time_ms,
            watts: self.model.predict(sample),
        };
        if self.history.len() == self.capacity {
            self.history.pop_front();
        }
        self.history.push_back(est);
        est
    }

    /// The retained estimates, oldest first.
    pub fn history(&self) -> impl Iterator<Item = &PowerEstimate> + '_ {
        self.history.iter()
    }

    /// Latest estimate, if any.
    pub fn latest(&self) -> Option<&PowerEstimate> {
        self.history.back()
    }

    /// Moving average of the last `n` estimates for one subsystem
    /// (fewer if history is shorter; `None` when empty).
    pub fn moving_average(&self, s: Subsystem, n: usize) -> Option<f64> {
        if self.history.is_empty() || n == 0 {
            return None;
        }
        let take = n.min(self.history.len());
        let sum: f64 = self
            .history
            .iter()
            .rev()
            .take(take)
            .map(|e| e.watts.get(s))
            .sum();
        Some(sum / take as f64)
    }

    /// Per-CPU power attribution for the latest sample pushed through
    /// [`push`](Self::push) — the per-processor accounting of §4.2.1.
    pub fn attribute_cpus(&self, sample: &SystemSample) -> Vec<f64> {
        let mut out = Vec::with_capacity(sample.per_cpu.len());
        self.attribute_cpus_into(sample, &mut out);
        out
    }

    /// Like [`attribute_cpus`](Self::attribute_cpus) but refilling a
    /// caller-owned buffer — for per-window attribution loops that run at
    /// sampling rate.
    pub fn attribute_cpus_into(&self, sample: &SystemSample, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            sample
                .per_cpu
                .iter()
                .map(|c| self.model.cpu.predict_single(c)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::CpuRates;

    fn sample(t: u64, upc: f64) -> SystemSample {
        SystemSample {
            time_ms: t,
            window_ms: 1000,
            per_cpu: vec![
                CpuRates {
                    active_frac: 1.0,
                    fetched_upc: upc,
                    ..CpuRates::default()
                };
                4
            ],
        }
    }

    #[test]
    fn history_is_bounded_fifo() {
        let mut e = SystemPowerEstimator::with_capacity(SystemPowerModel::paper(), 3);
        for t in 0..5 {
            e.push(&sample(t, 1.0));
        }
        let times: Vec<u64> = e.history().map(|x| x.time_ms).collect();
        assert_eq!(times, vec![2, 3, 4]);
        assert_eq!(e.latest().unwrap().time_ms, 4);
    }

    #[test]
    fn moving_average_tracks_recent_windows() {
        let mut e = SystemPowerEstimator::new(SystemPowerModel::paper());
        e.push(&sample(0, 0.0));
        e.push(&sample(1, 3.0));
        let avg1 = e.moving_average(Subsystem::Cpu, 1).unwrap();
        let avg2 = e.moving_average(Subsystem::Cpu, 2).unwrap();
        assert!(avg1 > avg2, "latest window is the hottest");
        assert_eq!(e.moving_average(Subsystem::Cpu, 0), None);
    }

    #[test]
    fn attribution_sums_to_cpu_estimate() {
        let e = SystemPowerEstimator::new(SystemPowerModel::paper());
        let s = sample(0, 2.0);
        let per_cpu = e.attribute_cpus(&s);
        assert_eq!(per_cpu.len(), 4);
        let total: f64 = per_cpu.iter().sum();
        let est = e.model().predict(&s).get(Subsystem::Cpu);
        assert!((total - est).abs() < 1e-9);
    }

    #[test]
    fn latest_none_when_empty() {
        let e = SystemPowerEstimator::new(SystemPowerModel::paper());
        assert!(e.latest().is_none());
        assert_eq!(e.moving_average(Subsystem::Cpu, 5), None);
    }

    #[test]
    fn push_sample_set_matches_push() {
        use tdp_counters::{CounterSample, CpuId, InterruptSnapshot, PerfEvent, SampleSet};
        let set = SampleSet {
            time_ms: 1000,
            window_ms: 1000,
            seq: 0,
            per_cpu: vec![CounterSample::new(
                CpuId::new(0),
                0,
                vec![
                    (PerfEvent::Cycles, 2_000_000_000),
                    (PerfEvent::HaltedCycles, 0),
                    (PerfEvent::FetchedUops, 4_000_000_000),
                ],
            )],
            interrupts: InterruptSnapshot::default(),
        };
        let mut a = SystemPowerEstimator::new(SystemPowerModel::paper());
        let mut b = SystemPowerEstimator::new(SystemPowerModel::paper());
        let via_set = a.push_sample_set(&set);
        let via_sample = b.push(&crate::input::SystemSample::from_sample_set(&set));
        assert_eq!(via_set, via_sample);
    }

    #[test]
    fn capacity_one_retains_exactly_the_latest() {
        let mut e = SystemPowerEstimator::with_capacity(SystemPowerModel::paper(), 1);
        for t in 0..10 {
            let est = e.push(&sample(t, 1.0));
            assert_eq!(est.time_ms, t, "push returns the new estimate");
            assert_eq!(e.history().count(), 1, "never exceeds capacity");
            assert_eq!(e.latest().unwrap().time_ms, t);
        }
    }

    #[test]
    fn history_never_exceeds_capacity_at_the_boundary() {
        let cap = 4;
        let mut e = SystemPowerEstimator::with_capacity(SystemPowerModel::paper(), cap);
        for t in 0..20 {
            e.push(&sample(t, 0.5));
            assert!(e.history().count() <= cap);
            // Filling the ring exactly to capacity evicts nothing.
            if (t as usize) < cap {
                assert_eq!(e.history().count(), t as usize + 1);
            }
        }
        let times: Vec<u64> = e.history().map(|x| x.time_ms).collect();
        assert_eq!(times, vec![16, 17, 18, 19], "oldest evicted first");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SystemPowerEstimator::with_capacity(SystemPowerModel::paper(), 0);
    }
}
