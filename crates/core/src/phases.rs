//! Power-phase detection over estimate streams.
//!
//! The paper's §2.4 argues that detecting *power* phases — not just
//! control-flow phases — needs "power information for additional
//! subsystems", which is exactly what the estimator provides. This
//! module segments an estimate stream into phases of approximately
//! constant subsystem power, the building block for phase-directed
//! adaptation policies (DVFS per phase, scheduling around memory-bound
//! phases, and so on).
//!
//! Detection is deliberately simple and online: a phase accumulates
//! windows while every subsystem stays within a threshold of the
//! phase's running mean; the first window that deviates closes the
//! phase and opens a new one. Isci & Martonosi's observation that
//! counter-based phase detection beats control-flow metrics
//! (paper ref. [20]) is the motivation for doing this on estimates
//! rather than on basic-block vectors.

use crate::estimator::PowerEstimate;
use serde::{Deserialize, Serialize};
use tdp_counters::Subsystem;
use tdp_powermeter::SubsystemPower;

/// Phase-detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseConfig {
    /// A window opens a new phase when any subsystem deviates from the
    /// current phase's mean by more than this many watts.
    pub threshold_w: f64,
    /// Phases shorter than this many windows are still reported (they
    /// are real — e.g. a sync() burst) but flagged unstable.
    pub min_stable_windows: usize,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        Self {
            threshold_w: 6.0,
            min_stable_windows: 3,
        }
    }
}

/// One detected phase: a run of windows with stable subsystem power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerPhase {
    /// Time of the first window in the phase, ms.
    pub start_ms: u64,
    /// Time of the last window, ms.
    pub end_ms: u64,
    /// Number of windows.
    pub windows: usize,
    /// Mean subsystem power over the phase.
    pub mean_watts: SubsystemPower,
    /// Whether the phase lasted at least `min_stable_windows`.
    pub stable: bool,
}

impl PowerPhase {
    /// The subsystem consuming the largest share of the phase's
    /// *dynamic* power (above the given idle baseline) — the natural
    /// adaptation target.
    pub fn dominant_subsystem(&self, idle: &SubsystemPower) -> Subsystem {
        Subsystem::ALL
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let da = self.mean_watts.get(a) - idle.get(a);
                let db = self.mean_watts.get(b) - idle.get(b);
                da.partial_cmp(&db).expect("power values are finite")
            })
            .expect("five subsystems exist")
    }

    /// Mean total power.
    pub fn total_w(&self) -> f64 {
        self.mean_watts.total()
    }
}

/// Online power-phase detector.
///
/// # Example
///
/// ```
/// use trickledown::{PhaseConfig, PhaseDetector, PowerEstimate};
/// use tdp_powermeter::SubsystemPower;
///
/// let mut det = PhaseDetector::new(PhaseConfig::default());
/// let mk = |t: u64, w: f64| PowerEstimate {
///     time_ms: t * 1000,
///     watts: SubsystemPower::from_array([w, 20.0, 30.0, 33.0, 21.6]),
/// };
/// // Ten quiet windows, then a jump.
/// for t in 0..10 {
///     assert!(det.push(&mk(t, 40.0)).is_none());
/// }
/// let closed = det.push(&mk(10, 160.0)).expect("phase boundary");
/// assert_eq!(closed.windows, 10);
/// assert!(closed.stable);
/// ```
#[derive(Debug, Clone)]
pub struct PhaseDetector {
    config: PhaseConfig,
    current: Option<PhaseAccumulator>,
}

#[derive(Debug, Clone)]
struct PhaseAccumulator {
    start_ms: u64,
    end_ms: u64,
    windows: usize,
    sums: SubsystemPower,
}

impl PhaseAccumulator {
    fn mean(&self) -> SubsystemPower {
        self.sums.scaled(1.0 / self.windows as f64)
    }

    fn into_phase(self, config: &PhaseConfig) -> PowerPhase {
        let mean_watts = self.mean();
        PowerPhase {
            start_ms: self.start_ms,
            end_ms: self.end_ms,
            windows: self.windows,
            mean_watts,
            stable: self.windows >= config.min_stable_windows,
        }
    }
}

impl PhaseDetector {
    /// Creates a detector.
    pub fn new(config: PhaseConfig) -> Self {
        Self {
            config,
            current: None,
        }
    }

    /// Feeds one estimate; returns the *previous* phase when this window
    /// opens a new one.
    pub fn push(&mut self, estimate: &PowerEstimate) -> Option<PowerPhase> {
        let Some(current) = &mut self.current else {
            self.current = Some(PhaseAccumulator {
                start_ms: estimate.time_ms,
                end_ms: estimate.time_ms,
                windows: 1,
                sums: estimate.watts,
            });
            return None;
        };

        let mean = current.mean();
        let deviates = Subsystem::ALL
            .iter()
            .any(|&s| (estimate.watts.get(s) - mean.get(s)).abs() > self.config.threshold_w);
        if deviates {
            let closed = self
                .current
                .take()
                .expect("checked above")
                .into_phase(&self.config);
            self.current = Some(PhaseAccumulator {
                start_ms: estimate.time_ms,
                end_ms: estimate.time_ms,
                windows: 1,
                sums: estimate.watts,
            });
            Some(closed)
        } else {
            current.windows += 1;
            current.end_ms = estimate.time_ms;
            current.sums += estimate.watts;
            None
        }
    }

    /// Closes and returns the in-progress phase, if any.
    pub fn finish(&mut self) -> Option<PowerPhase> {
        self.current.take().map(|acc| acc.into_phase(&self.config))
    }

    /// Convenience: segments a whole estimate series.
    pub fn segment(config: PhaseConfig, estimates: &[PowerEstimate]) -> Vec<PowerPhase> {
        let mut det = Self::new(config);
        let mut phases: Vec<PowerPhase> = estimates.iter().filter_map(|e| det.push(e)).collect();
        phases.extend(det.finish());
        phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(t: u64, cpu: f64, mem: f64) -> PowerEstimate {
        PowerEstimate {
            time_ms: t * 1000,
            watts: SubsystemPower::from_array([cpu, 19.9, mem, 32.9, 21.6]),
        }
    }

    #[test]
    fn square_wave_yields_alternating_phases() {
        let mut series = Vec::new();
        for t in 0..30 {
            let cpu = if (t / 10) % 2 == 0 { 40.0 } else { 160.0 };
            series.push(est(t, cpu, 28.0));
        }
        let phases = PhaseDetector::segment(PhaseConfig::default(), &series);
        assert_eq!(phases.len(), 3);
        assert!(phases.iter().all(|p| p.windows == 10 && p.stable));
        assert!(phases[0].total_w() < phases[1].total_w());
    }

    #[test]
    fn noise_below_threshold_does_not_split() {
        let series: Vec<PowerEstimate> = (0..50)
            .map(|t| est(t, 100.0 + (t % 5) as f64, 30.0))
            .collect();
        let phases = PhaseDetector::segment(PhaseConfig::default(), &series);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].windows, 50);
    }

    #[test]
    fn memory_only_shift_is_detected() {
        let mut series: Vec<PowerEstimate> = (0..10).map(|t| est(t, 100.0, 29.0)).collect();
        series.extend((10..20).map(|t| est(t, 100.0, 44.0)));
        let phases = PhaseDetector::segment(PhaseConfig::default(), &series);
        assert_eq!(phases.len(), 2);
        let idle = SubsystemPower::from_array([38.4, 19.9, 28.0, 32.9, 21.6]);
        assert_eq!(
            phases[0].dominant_subsystem(&idle),
            tdp_counters::Subsystem::Cpu
        );
        assert_eq!(
            phases[1].dominant_subsystem(&idle),
            tdp_counters::Subsystem::Cpu,
            "CPU still dominates dynamically, memory merely shifted"
        );
    }

    #[test]
    fn short_phase_is_flagged_unstable() {
        let mut series: Vec<PowerEstimate> = (0..10).map(|t| est(t, 40.0, 28.0)).collect();
        series.push(est(10, 160.0, 40.0)); // one-window burst
        series.extend((11..20).map(|t| est(t, 40.0, 28.0)));
        let phases = PhaseDetector::segment(PhaseConfig::default(), &series);
        assert_eq!(phases.len(), 3);
        assert!(phases[0].stable);
        assert!(!phases[1].stable, "single-window burst");
        assert_eq!(phases[1].windows, 1);
    }

    #[test]
    fn empty_series_yields_no_phases() {
        let phases = PhaseDetector::segment(PhaseConfig::default(), &[]);
        assert!(phases.is_empty());
        let mut det = PhaseDetector::new(PhaseConfig::default());
        assert_eq!(det.finish(), None);
    }
}
