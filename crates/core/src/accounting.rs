//! Per-process power and energy accounting.
//!
//! The paper argues this is where per-CPU attribution is headed: "In the
//! near future it is expected that billing of compute time in these
//! environments will take account of power consumed by each process …
//! process-level power accounting is essential" (§4.2.1), especially
//! under virtualisation where tenants share physical processors.
//!
//! The accountant combines two window-aligned inputs:
//!
//! * the counter-derived per-CPU power estimate (Equation 1), and
//! * the OS scheduler's accounting of which process retired how many
//!   uops on which CPU ([`tdp_simsys::os::SchedDelta`] — the
//!   `/proc/<pid>/stat` equivalent);
//!
//! and applies a documented attribution policy per CPU:
//!
//! * the **idle floor** (`halt_w`) is infrastructure cost — it accrues
//!   to the [`ProcessEnergyLedger::system_energy_j`] bucket;
//! * the **dynamic remainder** of the CPU's estimated energy splits
//!   among that CPU's processes proportionally to retired uops.
//!
//! Energy is conserved: system + Σ per-process = Σ per-CPU estimates.

use crate::input::SystemSample;
use crate::models::CpuPowerModel;
use std::collections::HashMap;
use tdp_simsys::os::{ProcessId, SchedDelta};

/// Running per-process CPU-energy ledger.
///
/// # Example
///
/// ```
/// use tdp_simsys::os::{ProcessId, SchedDelta};
/// use trickledown::{CpuPowerModel, CpuRates, ProcessEnergyLedger, SystemSample};
///
/// let mut ledger = ProcessEnergyLedger::new(CpuPowerModel::paper());
/// let sample = SystemSample {
///     time_ms: 1000,
///     window_ms: 1000,
///     per_cpu: vec![CpuRates {
///         active_frac: 1.0,
///         fetched_upc: 2.0,
///         ..CpuRates::default()
///     }],
/// };
/// // Two tenants share the CPU, one doing 3x the work.
/// let delta = SchedDelta {
///     entries: vec![
///         (ProcessId(1), 0, 1_500_000),
///         (ProcessId(2), 0, 500_000),
///     ],
/// };
/// ledger.account(&sample, &delta);
/// let a = ledger.energy_j(ProcessId(1));
/// let b = ledger.energy_j(ProcessId(2));
/// assert!((a / b - 3.0).abs() < 1e-9, "billed 3:1");
/// ```
#[derive(Debug, Clone)]
pub struct ProcessEnergyLedger {
    model: CpuPowerModel,
    per_process_j: HashMap<ProcessId, f64>,
    system_j: f64,
    windows: u64,
}

impl ProcessEnergyLedger {
    /// Creates an empty ledger billing with `model`.
    pub fn new(model: CpuPowerModel) -> Self {
        Self {
            model,
            per_process_j: HashMap::new(),
            system_j: 0.0,
            windows: 0,
        }
    }

    /// Accounts one window: pairs the counter sample with the
    /// scheduler's delta for the same window.
    pub fn account(&mut self, sample: &SystemSample, sched: &SchedDelta) {
        let window_s = sample.window_ms as f64 / 1000.0;
        self.windows += 1;
        for (cpu, rates) in sample.per_cpu.iter().enumerate() {
            let watts = self.model.predict_single(rates);
            let energy = watts * window_s;
            let floor = self.model.halt_w * window_s;
            let dynamic = (energy - floor).max(0.0);
            let total_uops = sched.retired_on_cpu(cpu);
            if total_uops == 0 {
                // Nobody ran here: the whole window is infrastructure.
                self.system_j += energy;
                continue;
            }
            self.system_j += energy - dynamic;
            for &(pid, c, uops) in &sched.entries {
                if c == cpu && uops > 0 {
                    let share = uops as f64 / total_uops as f64;
                    *self.per_process_j.entry(pid).or_insert(0.0) += dynamic * share;
                }
            }
        }
    }

    /// Energy billed to `pid` so far, joules.
    pub fn energy_j(&self, pid: ProcessId) -> f64 {
        self.per_process_j.get(&pid).copied().unwrap_or(0.0)
    }

    /// Unattributed infrastructure energy (idle floors, empty CPUs).
    pub fn system_energy_j(&self) -> f64 {
        self.system_j
    }

    /// Total energy accounted (system + all processes).
    pub fn total_energy_j(&self) -> f64 {
        self.system_j + self.per_process_j.values().sum::<f64>()
    }

    /// Windows accounted.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// All per-process balances, sorted by descending energy.
    pub fn balances(&self) -> Vec<(ProcessId, f64)> {
        let mut v: Vec<(ProcessId, f64)> =
            self.per_process_j.iter().map(|(&p, &e)| (p, e)).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite energies"));
        v
    }

    /// Renders a billing table; `name_of` supplies display names
    /// (e.g. from [`tdp_simsys::os::Os::name_of_pid`]).
    pub fn render(&self, mut name_of: impl FnMut(ProcessId) -> String) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<8} {:<12} {:>12} {:>9}",
            "pid", "process", "energy (J)", "share"
        );
        let total = self.total_energy_j().max(1e-12);
        for (pid, e) in self.balances() {
            let _ = writeln!(
                out,
                "{:<8} {:<12} {:>12.1} {:>8.1}%",
                pid.0,
                name_of(pid),
                e,
                e / total * 100.0
            );
        }
        let _ = writeln!(
            out,
            "{:<8} {:<12} {:>12.1} {:>8.1}%",
            "-",
            "(system)",
            self.system_j,
            self.system_j / total * 100.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::CpuRates;

    fn sample(per_cpu: Vec<CpuRates>) -> SystemSample {
        SystemSample {
            time_ms: 1000,
            window_ms: 1000,
            per_cpu,
        }
    }

    fn busy(upc: f64) -> CpuRates {
        CpuRates {
            active_frac: 1.0,
            fetched_upc: upc,
            ..CpuRates::default()
        }
    }

    #[test]
    fn energy_is_conserved() {
        let model = CpuPowerModel::paper();
        let mut ledger = ProcessEnergyLedger::new(model);
        let s = sample(vec![busy(2.0), busy(1.0), CpuRates::default()]);
        let sched = SchedDelta {
            entries: vec![
                (ProcessId(1), 0, 800),
                (ProcessId(2), 0, 200),
                (ProcessId(3), 1, 500),
            ],
        };
        ledger.account(&s, &sched);
        let expected: f64 = s
            .per_cpu
            .iter()
            .map(|c| model.predict_single(c))
            .sum::<f64>();
        assert!((ledger.total_energy_j() - expected).abs() < 1e-9);
        assert_eq!(ledger.windows(), 1);
    }

    #[test]
    fn idle_cpu_bills_nobody() {
        let mut ledger = ProcessEnergyLedger::new(CpuPowerModel::paper());
        let s = sample(vec![CpuRates::default()]);
        ledger.account(&s, &SchedDelta::default());
        assert!(ledger.balances().is_empty());
        assert!((ledger.system_energy_j() - 9.25).abs() < 1e-9);
    }

    #[test]
    fn shares_follow_uops_within_a_cpu() {
        let mut ledger = ProcessEnergyLedger::new(CpuPowerModel::paper());
        let s = sample(vec![busy(3.0)]);
        let sched = SchedDelta {
            entries: vec![(ProcessId(7), 0, 900), (ProcessId(8), 0, 100)],
        };
        ledger.account(&s, &sched);
        let a = ledger.energy_j(ProcessId(7));
        let b = ledger.energy_j(ProcessId(8));
        assert!((a / b - 9.0).abs() < 1e-9);
        // Dynamic pool = predicted - halt floor.
        let dynamic = CpuPowerModel::paper().predict_single(&busy(3.0)) - 9.25;
        assert!((a + b - dynamic).abs() < 1e-9);
    }

    #[test]
    fn balances_sort_descending_and_render() {
        let mut ledger = ProcessEnergyLedger::new(CpuPowerModel::paper());
        let s = sample(vec![busy(2.0), busy(2.0)]);
        // Same CPU, unequal work — distinct energies so the descending
        // sort has a unique answer.
        let sched = SchedDelta {
            entries: vec![(ProcessId(1), 0, 100), (ProcessId(2), 0, 900)],
        };
        ledger.account(&s, &sched);
        let balances = ledger.balances();
        assert_eq!(balances[0].0, ProcessId(2));
        let table = ledger.render(|p| format!("tenant-{}", p.0));
        assert!(table.contains("tenant-2"));
        assert!(table.contains("(system)"));
    }

    #[test]
    fn unknown_pid_has_zero_balance() {
        let ledger = ProcessEnergyLedger::new(CpuPowerModel::paper());
        assert_eq!(ledger.energy_j(ProcessId(42)), 0.0);
        assert_eq!(ledger.total_energy_j(), 0.0);
    }
}
