//! Equations 2 and 3: the memory power models.
//!
//! The paper builds two memory models and the contrast between them is
//! its central methodological result:
//!
//! * **Equation 2** (cache-miss model) predicts from L3 load misses per
//!   cycle. It is accurate for well-behaved workloads (1% on `mesa`) but
//!   "fails under extreme cases": when prefetch and DMA traffic decouple
//!   memory activity from *demand* misses (`mcf` at high thread counts),
//!   it underestimates badly (§4.2.2, Figures 3–4).
//! * **Equation 3** (bus-transaction model) predicts from all-agent
//!   memory-bus transactions per mega-cycle, which includes prefetch and
//!   DMA traffic, and "remains valid for all observed bus utilization
//!   rates" (2.2% error on the same `mcf` trace, Figure 5).
//!
//! Both are single-input quadratics; [`MemoryInput`] selects which event
//! feeds them.

use crate::input::SystemSample;
use crate::models::{
    clamp_watts, dynamic_peak_per_cpu, fit_linear_features, is_unbounded, quad_poly, unbounded,
    SubsystemPowerModel,
};
use serde::{Deserialize, Serialize};
use tdp_counters::Subsystem;
use tdp_modeling::FitError;

/// Which CPU event drives the memory model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryInput {
    /// L3 load misses per cycle (Equation 2).
    L3LoadMisses,
    /// All-agent bus transactions per mega-cycle (Equation 3).
    BusTransactions,
}

impl MemoryInput {
    /// The model input in this variant's native units: L3 load misses
    /// per **kilo**cycle, or bus transactions per **mega**cycle. Both
    /// fitting and prediction use these units, so fitted coefficients
    /// and the published constants live on the same scale.
    fn value(self, rates: &crate::input::CpuRates) -> f64 {
        match self {
            MemoryInput::L3LoadMisses => rates.l3_load_misses * 1_000.0,
            MemoryInput::BusTransactions => rates.bus_tx_per_mcycle,
        }
    }
}

/// A single-input quadratic memory model:
/// `background + Σᵢ (lin·xᵢ + quad·xᵢ²)` over CPUs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryPowerModel {
    /// Which event drives the model.
    pub input: MemoryInput,
    /// System DC term (idle memory power), watts.
    pub background_w: f64,
    /// Linear coefficient.
    pub lin: f64,
    /// Quadratic coefficient.
    pub quad: f64,
    /// Upper end of the calibrated per-CPU input range (in the
    /// [`MemoryInput`] variant's native units); `∞` = unbounded. The
    /// quadratic is a fit, only trusted inside this range — the paper
    /// documents Equation 2 "failing under extreme cases" at high
    /// utilization (§4.2.2) — so predictions are clamped to the output
    /// ceiling the range implies (see [`Self::dynamic_peak`]). Skipped
    /// in JSON when unbounded (`serde_json` cannot carry infinities).
    #[serde(default = "unbounded", skip_serializing_if = "is_unbounded")]
    pub valid_max: f64,
}

impl MemoryPowerModel {
    /// Equation 2 with the paper's published coefficients. The paper
    /// prints per-cycle miss rates without a unit scale; the published
    /// numbers are kept verbatim and interpreted against misses per
    /// **kilo**cycle, the scale at which they land in the paper's
    /// 28–46 W range.
    pub fn paper_l3() -> Self {
        Self {
            input: MemoryInput::L3LoadMisses,
            background_w: 28.0,
            lin: 3.43,
            quad: 7.66,
            valid_max: f64::INFINITY,
        }
    }

    /// Equation 3 with the paper's published coefficients (input in bus
    /// transactions per mega-cycle).
    pub fn paper_bus() -> Self {
        Self {
            input: MemoryInput::BusTransactions,
            background_w: 29.2,
            lin: -50.1e-4,
            quad: 813e-8,
            valid_max: f64::INFINITY,
        }
    }

    /// Attaches a calibrated validity range: the largest per-CPU input
    /// the training trace exercised. Predictions are clamped to the
    /// output ceiling this range implies.
    #[must_use]
    pub fn with_valid_max(mut self, valid_max: f64) -> Self {
        self.valid_max = valid_max;
        self
    }

    /// The largest dynamic (above-background) contribution one CPU can
    /// make inside the calibrated range — the per-CPU term of the
    /// prediction ceiling. The fleet column kernels use this same value
    /// so scalar and batched clamping stay bit-identical.
    pub fn dynamic_peak(&self) -> f64 {
        dynamic_peak_per_cpu(self.lin, self.quad, self.valid_max)
    }

    /// Fits a quadratic for the given input against measured memory
    /// watts.
    ///
    /// # Errors
    ///
    /// Propagates [`FitError`] — notably [`FitError::SingularSystem`]
    /// when the training trace has no variation in the chosen input.
    pub fn fit<S: std::borrow::Borrow<SystemSample>>(
        input: MemoryInput,
        samples: &[S],
        watts: &[f64],
    ) -> Result<Self, FitError> {
        let coeffs = fit_linear_features(
            samples,
            watts,
            |s| {
                vec![
                    s.sum(|c| input.value(c)),
                    s.sum(|c| input.value(c) * input.value(c)),
                ]
            },
            2,
        )?;
        Ok(Self {
            input,
            background_w: coeffs[0],
            lin: coeffs[1],
            quad: coeffs[2],
            valid_max: f64::INFINITY,
        })
    }
}

impl SubsystemPowerModel for MemoryPowerModel {
    fn subsystem(&self) -> Subsystem {
        Subsystem::Memory
    }

    fn predict(&self, sample: &SystemSample) -> f64 {
        // Aggregate Σx and Σx² in CPU order, then evaluate the shared
        // quadratic — the identical accumulation sequence and
        // polynomial the fleet columns use, so scalar and batched
        // predictions match bit for bit.
        let (mut x, mut x_sq) = (0.0f64, 0.0f64);
        for c in &sample.per_cpu {
            let v = self.input.value(c);
            x += v;
            x_sq += v * v;
        }
        let raw = quad_poly(self.background_w, self.lin, self.quad, x, x_sq);
        let n = sample.per_cpu.len() as f64;
        clamp_watts(raw, self.background_w + self.dynamic_peak() * n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::CpuRates;

    fn sample_with(input: MemoryInput, values: &[f64]) -> SystemSample {
        SystemSample {
            time_ms: 0,
            window_ms: 1000,
            per_cpu: values
                .iter()
                .map(|&v| match input {
                    MemoryInput::L3LoadMisses => CpuRates {
                        l3_load_misses: v,
                        ..CpuRates::default()
                    },
                    MemoryInput::BusTransactions => CpuRates {
                        bus_tx_per_mcycle: v,
                        ..CpuRates::default()
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn fit_recovers_quadratic() {
        let truth = MemoryPowerModel {
            input: MemoryInput::BusTransactions,
            background_w: 28.5,
            lin: 0.001,
            quad: 2e-8,
            valid_max: f64::INFINITY,
        };
        let mut samples = Vec::new();
        let mut watts = Vec::new();
        for i in 0..50 {
            let s = sample_with(
                MemoryInput::BusTransactions,
                &[i as f64 * 150.0, i as f64 * 90.0, 50.0, 0.0],
            );
            watts.push(truth.predict(&s));
            samples.push(s);
        }
        let fitted = MemoryPowerModel::fit(MemoryInput::BusTransactions, &samples, &watts).unwrap();
        assert!((fitted.background_w - truth.background_w).abs() < 1e-6);
        assert!((fitted.lin - truth.lin).abs() < 1e-9);
        assert!((fitted.quad - truth.quad).abs() < 1e-12);
    }

    #[test]
    fn idle_predicts_background() {
        let m = MemoryPowerModel::paper_bus();
        let s = sample_with(MemoryInput::BusTransactions, &[0.0; 4]);
        assert!((m.predict(&s) - 29.2).abs() < 1e-9);
    }

    #[test]
    fn l3_model_ignores_bus_and_vice_versa() {
        let l3 = MemoryPowerModel::paper_l3();
        let bus_only = sample_with(MemoryInput::BusTransactions, &[5_000.0; 4]);
        assert!((l3.predict(&bus_only) - l3.background_w).abs() < 1e-9);

        let bus = MemoryPowerModel::paper_bus();
        let l3_only = sample_with(MemoryInput::L3LoadMisses, &[0.01; 4]);
        assert!((bus.predict(&l3_only) - bus.background_w).abs() < 1e-9);
    }

    #[test]
    fn extreme_rates_never_predict_negative_watts() {
        // The bus model's linear term is negative (−50.1e-4), so a
        // pathological input just below the parabola's positive region
        // can push the raw polynomial under the background term; a
        // fitted model with negative curvature can go below zero
        // outright. Predictions saturate at the non-negative floor.
        let bent = MemoryPowerModel {
            input: MemoryInput::BusTransactions,
            background_w: 5.0,
            lin: 0.01,
            quad: -1e-5,
            valid_max: f64::INFINITY,
        };
        let s = sample_with(MemoryInput::BusTransactions, &[1e6; 4]);
        assert_eq!(bent.predict(&s), 0.0, "floor at 0 W, not negative");
    }

    #[test]
    fn valid_range_ceiling_caps_out_of_range_inputs() {
        // Positive curvature (the Eq. 2 blow-up case): unbounded range
        // means no ceiling, a calibrated range caps the output at what
        // in-range inputs could have produced.
        let m = MemoryPowerModel::paper_l3();
        let wild = sample_with(MemoryInput::L3LoadMisses, &[0.5; 4]);
        let unbounded = m.predict(&wild);
        let ranged = m.with_valid_max(10.0).predict(&wild);
        assert!(unbounded > 10_000.0, "raw quadratic blows up: {unbounded}");
        let per_cpu_peak = 3.43 * 10.0 + 7.66 * 100.0;
        assert!((ranged - (28.0 + 4.0 * per_cpu_peak)).abs() < 1e-9);
        // In-range inputs are untouched by the same ceiling.
        let tame = sample_with(MemoryInput::L3LoadMisses, &[0.004; 4]);
        assert_eq!(
            m.with_valid_max(10.0).predict(&tame).to_bits(),
            m.predict(&tame).to_bits()
        );
    }

    #[test]
    fn bus_model_sees_dma_traffic_l3_model_does_not() {
        // The mcf failure in miniature: demand misses stay flat while
        // bus transactions grow — only the bus model's prediction moves.
        let l3 = MemoryPowerModel::paper_l3();
        let bus = MemoryPowerModel::fit(
            MemoryInput::BusTransactions,
            &(0..20)
                .map(|i| sample_with(MemoryInput::BusTransactions, &[i as f64 * 500.0; 4]))
                .collect::<Vec<_>>(),
            &(0..20).map(|i| 28.0 + i as f64).collect::<Vec<_>>(),
        )
        .unwrap();

        let low = SystemSample {
            time_ms: 0,
            window_ms: 1000,
            per_cpu: vec![
                CpuRates {
                    l3_load_misses: 0.002,
                    bus_tx_per_mcycle: 2_000.0,
                    ..CpuRates::default()
                };
                4
            ],
        };
        let high = SystemSample {
            per_cpu: vec![
                CpuRates {
                    l3_load_misses: 0.002,      // unchanged demand misses
                    bus_tx_per_mcycle: 9_000.0, // prefetch + DMA grew
                    ..CpuRates::default()
                };
                4
            ],
            ..low.clone()
        };
        assert!((l3.predict(&high) - l3.predict(&low)).abs() < 1e-9);
        assert!(bus.predict(&high) > bus.predict(&low) + 5.0);
    }
}
