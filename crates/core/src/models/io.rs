//! Equation 5: the I/O power model (interrupts).
//!
//! Of the three candidate events — DMA accesses, uncacheable accesses
//! and interrupts — interrupts won: write-combining and per-command
//! overhead in the I/O chips sever the proportionality between payload
//! bytes and DMA bus transactions, while every completed device command
//! produces exactly one interrupt (§4.2.4). The model rides on a very
//! large DC term (two bridge chips and six PCI-X bus clocks never stop).

use crate::input::SystemSample;
use crate::models::{
    clamp_watts, dynamic_peak_per_cpu, fit_linear_features, is_unbounded, quad_poly, unbounded,
    SubsystemPowerModel,
};
use serde::{Deserialize, Serialize};
use tdp_counters::Subsystem;
use tdp_modeling::FitError;

/// The Equation-5 I/O model:
/// `dc + Σᵢ (lin·intᵢ + quad·intᵢ²)` with `int` in interrupts/cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoPowerModel {
    /// DC offset, watts.
    pub dc_w: f64,
    /// Linear coefficient.
    pub int_lin: f64,
    /// Quadratic coefficient.
    pub int_quad: f64,
    /// Upper end of the calibrated per-CPU interrupt-rate range
    /// (interrupts/cycle); `∞` = unbounded. The published curvature is
    /// negative (−1.12e9), so far-out-of-range rates drive the raw
    /// polynomial below zero — predictions are clamped to
    /// `[0, ceiling]` (see [`Self::dynamic_peak`]). Skipped in JSON
    /// when unbounded.
    #[serde(default = "unbounded", skip_serializing_if = "is_unbounded")]
    pub valid_max: f64,
}

impl IoPowerModel {
    /// The paper's published coefficients (Equation 5), defined over
    /// *device* interrupt rates (the constant timer tick belongs to the
    /// DC term — `/proc/interrupts` attribution separates sources).
    pub fn paper() -> Self {
        Self {
            dc_w: 32.7,
            int_lin: 108e6,
            int_quad: -1.12e9,
            valid_max: f64::INFINITY,
        }
    }

    /// Attaches a calibrated validity range: the largest per-CPU device
    /// interrupt rate the training trace exercised.
    #[must_use]
    pub fn with_valid_max(mut self, valid_max: f64) -> Self {
        self.valid_max = valid_max;
        self
    }

    /// The largest dynamic (above-DC) contribution one CPU can make
    /// inside the calibrated range — shared with the fleet column
    /// kernels for bit-identical clamping.
    pub fn dynamic_peak(&self) -> f64 {
        dynamic_peak_per_cpu(self.int_lin, self.int_quad, self.valid_max)
    }

    /// Fits against measured I/O watts, using the device (non-timer)
    /// interrupt rate so the DC term corresponds to the real idle
    /// operating point instead of an extrapolation past the constant
    /// timer rate.
    ///
    /// # Errors
    ///
    /// Propagates [`FitError`].
    pub fn fit<S: std::borrow::Borrow<SystemSample>>(
        samples: &[S],
        watts: &[f64],
    ) -> Result<Self, FitError> {
        let coeffs = fit_linear_features(
            samples,
            watts,
            |s| {
                let i = |c: &crate::input::CpuRates| c.device_interrupts_per_cycle;
                vec![s.sum(i), s.sum(|c| i(c) * i(c))]
            },
            2,
        )?;
        Ok(Self {
            dc_w: coeffs[0],
            int_lin: coeffs[1],
            int_quad: coeffs[2],
            valid_max: f64::INFINITY,
        })
    }

    /// The DC offset (for offset-adjusted error reporting; the paper
    /// notes error grows to 32% when the DC term is subtracted,
    /// §4.2.4).
    pub fn dc_offset(&self) -> f64 {
        self.dc_w
    }
}

impl SubsystemPowerModel for IoPowerModel {
    fn subsystem(&self) -> Subsystem {
        Subsystem::Io
    }

    fn predict(&self, sample: &SystemSample) -> f64 {
        // Aggregate-then-evaluate through the shared quadratic, in the
        // same order as the fleet columns (bit-for-bit agreement).
        let (mut i_sum, mut i_sq) = (0.0f64, 0.0f64);
        for c in &sample.per_cpu {
            let i = c.device_interrupts_per_cycle;
            i_sum += i;
            i_sq += i * i;
        }
        let raw = quad_poly(self.dc_w, self.int_lin, self.int_quad, i_sum, i_sq);
        let n = sample.per_cpu.len() as f64;
        clamp_watts(raw, self.dc_w + self.dynamic_peak() * n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::CpuRates;

    fn sample(ints: f64) -> SystemSample {
        SystemSample {
            time_ms: 0,
            window_ms: 1000,
            per_cpu: vec![
                CpuRates {
                    interrupts_per_cycle: ints,
                    device_interrupts_per_cycle: ints,
                    ..CpuRates::default()
                };
                4
            ],
        }
    }

    #[test]
    fn idle_is_dc() {
        let m = IoPowerModel::paper();
        assert!((m.predict(&sample(0.0)) - 32.7).abs() < 1e-12);
    }

    #[test]
    fn prediction_grows_then_saturates() {
        // The negative quadratic term peaks the parabola at
        // lin / (2·|quad|) = 108e6 / 2.24e9 ≈ 0.048 interrupts/cycle.
        let m = IoPowerModel::paper();
        let rising = m.predict(&sample(0.02));
        let peak = m.predict(&sample(0.048));
        let falling = m.predict(&sample(0.09));
        assert!(peak > rising, "still rising below the vertex");
        assert!(falling < peak, "bends over past the vertex");
    }

    #[test]
    fn extreme_rates_never_predict_negative_watts() {
        // Past ~0.096 interrupts/cycle (per CPU, ×4 aggregated) the
        // published downward parabola crosses zero; a storm of 0.5
        // interrupts/cycle used to predict around −2 MW. Clamp to the
        // non-negative floor instead.
        let m = IoPowerModel::paper();
        for ints in [0.5, 1.0, 10.0] {
            let w = m.predict(&sample(ints));
            assert!(w >= 0.0, "ints {ints} predicted {w} W");
        }
        // A calibrated range additionally caps the upside: the ceiling
        // is what the range's peak input could produce, not the vertex
        // of an extrapolated parabola.
        let ranged = m.with_valid_max(1e-6);
        let per_cpu_peak = 108e6 * 1e-6 + -1.12e9 * 1e-6 * 1e-6;
        let capped = ranged.predict(&sample(0.01));
        assert!((capped - (32.7 + 4.0 * per_cpu_peak)).abs() < 1e-9);
    }

    #[test]
    fn fit_recovers_coefficients() {
        let truth = IoPowerModel {
            dc_w: 33.0,
            int_lin: 9e7,
            int_quad: -8e8,
            valid_max: f64::INFINITY,
        };
        let mut samples = Vec::new();
        let mut watts = Vec::new();
        for i in 0..40 {
            let s = sample(i as f64 * 3e-9);
            watts.push(truth.predict(&s));
            samples.push(s);
        }
        let fitted = IoPowerModel::fit(&samples, &watts).unwrap();
        assert!((fitted.dc_w - truth.dc_w).abs() < 1e-6);
        assert!((fitted.int_lin - truth.int_lin).abs() / truth.int_lin < 1e-3);
    }
}
