//! Equation 4: the disk power model (DMA + interrupts).
//!
//! The disk is the farthest subsystem from the CPU, buffered behind the
//! processor cache, the OS page cache and the controller queues, so the
//! paper combines **two** trickle-down events: disk-controller
//! interrupts (one per completed command — timely and device-specific)
//! and DMA accesses on the memory bus (proportional to payload). The
//! model is a two-input quadratic over a large DC offset (the
//! always-spinning platters), and its error is reported after
//! subtracting that offset (§4.2.3).

use crate::input::SystemSample;
use crate::models::{
    clamp_watts, dynamic_peak_per_cpu, fit_linear_features, is_unbounded, quad_poly, unbounded,
    SubsystemPowerModel,
};
use serde::{Deserialize, Serialize};
use tdp_counters::Subsystem;
use tdp_modeling::FitError;

/// The Equation-4 disk model:
/// `dc + Σᵢ (i_lin·intᵢ + i_quad·intᵢ² + d_lin·dmaᵢ + d_quad·dmaᵢ²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskPowerModel {
    /// DC offset: rotation + electronics, watts.
    pub dc_w: f64,
    /// Linear interrupt-rate coefficient (input: interrupts/cycle).
    pub int_lin: f64,
    /// Quadratic interrupt-rate coefficient.
    pub int_quad: f64,
    /// Linear DMA-rate coefficient (input: DMA accesses/cycle).
    pub dma_lin: f64,
    /// Quadratic DMA-rate coefficient.
    pub dma_quad: f64,
    /// Upper end of the calibrated per-CPU interrupt-rate range
    /// (interrupts/cycle); `∞` = unbounded. Both published quadratics
    /// have negative curvature (`int_quad: -11.1e15`), so rates past
    /// the vertex drive the raw polynomial below zero — predictions are
    /// clamped to `[0, ceiling]` (see [`Self::dynamic_peak`]). Skipped
    /// in JSON when unbounded.
    #[serde(default = "unbounded", skip_serializing_if = "is_unbounded")]
    pub int_valid_max: f64,
    /// Upper end of the calibrated per-CPU DMA-rate range
    /// (accesses/cycle); `∞` = unbounded. Same clamping role as
    /// [`int_valid_max`](Self::int_valid_max).
    #[serde(default = "unbounded", skip_serializing_if = "is_unbounded")]
    pub dma_valid_max: f64,
}

impl DiskPowerModel {
    /// The paper's published coefficients (Equation 4).
    pub fn paper() -> Self {
        Self {
            dc_w: 21.6,
            int_lin: 10.6e7,
            int_quad: -11.1e15,
            dma_lin: 9.18,
            dma_quad: -45.4,
            int_valid_max: f64::INFINITY,
            dma_valid_max: f64::INFINITY,
        }
    }

    /// Attaches calibrated validity ranges: the largest per-CPU
    /// interrupt and DMA rates the training trace exercised.
    #[must_use]
    pub fn with_valid_max(mut self, int_valid_max: f64, dma_valid_max: f64) -> Self {
        self.int_valid_max = int_valid_max;
        self.dma_valid_max = dma_valid_max;
        self
    }

    /// The largest dynamic (above-DC) contribution one CPU can make
    /// inside the calibrated ranges: interrupt peak plus DMA peak. With
    /// unbounded ranges the negative curvature still yields a finite
    /// peak (the parabola's vertex), so even the paper model has a
    /// ceiling valid data cannot cross. Shared with the fleet column
    /// kernels for bit-identical clamping.
    pub fn dynamic_peak(&self) -> f64 {
        dynamic_peak_per_cpu(self.int_lin, self.int_quad, self.int_valid_max)
            + dynamic_peak_per_cpu(self.dma_lin, self.dma_quad, self.dma_valid_max)
    }

    /// Fits the five coefficients against measured disk watts.
    ///
    /// # Errors
    ///
    /// Propagates [`FitError`]; a trace without disk activity cannot be
    /// fitted (all inputs zero → singular system).
    pub fn fit<S: std::borrow::Borrow<SystemSample>>(
        samples: &[S],
        watts: &[f64],
    ) -> Result<Self, FitError> {
        let coeffs = fit_linear_features(
            samples,
            watts,
            |s| {
                let i = |c: &crate::input::CpuRates| c.disk_interrupts_per_cycle;
                let d = |c: &crate::input::CpuRates| c.dma_per_cycle;
                vec![
                    s.sum(i),
                    s.sum(|c| i(c) * i(c)),
                    s.sum(d),
                    s.sum(|c| d(c) * d(c)),
                ]
            },
            4,
        )?;
        Ok(Self {
            dc_w: coeffs[0],
            int_lin: coeffs[1],
            int_quad: coeffs[2],
            dma_lin: coeffs[3],
            dma_quad: coeffs[4],
            int_valid_max: f64::INFINITY,
            dma_valid_max: f64::INFINITY,
        })
    }

    /// The DC offset used for offset-adjusted error reporting.
    pub fn dc_offset(&self) -> f64 {
        self.dc_w
    }
}

impl SubsystemPowerModel for DiskPowerModel {
    fn subsystem(&self) -> Subsystem {
        Subsystem::Disk
    }

    fn predict(&self, sample: &SystemSample) -> f64 {
        // Aggregate both inputs and their squares in CPU order, then
        // evaluate the shared quadratic twice (interrupts carry the DC
        // term, DMA contributes dynamics only) — the same sequence the
        // fleet columns evaluate, bit for bit.
        let (mut i_sum, mut i_sq, mut d_sum, mut d_sq) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for c in &sample.per_cpu {
            let i = c.disk_interrupts_per_cycle;
            let d = c.dma_per_cycle;
            i_sum += i;
            i_sq += i * i;
            d_sum += d;
            d_sq += d * d;
        }
        let raw = quad_poly(self.dc_w, self.int_lin, self.int_quad, i_sum, i_sq)
            + quad_poly(0.0, self.dma_lin, self.dma_quad, d_sum, d_sq);
        let n = sample.per_cpu.len() as f64;
        clamp_watts(raw, self.dc_w + self.dynamic_peak() * n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::CpuRates;

    fn sample(ints: f64, dma: f64) -> SystemSample {
        SystemSample {
            time_ms: 0,
            window_ms: 1000,
            per_cpu: vec![
                CpuRates {
                    disk_interrupts_per_cycle: ints,
                    dma_per_cycle: dma,
                    ..CpuRates::default()
                };
                4
            ],
        }
    }

    #[test]
    fn paper_model_idle_is_pure_dc() {
        let m = DiskPowerModel::paper();
        assert!((m.predict(&sample(0.0, 0.0)) - 21.6).abs() < 1e-12);
        assert_eq!(m.dc_offset(), 21.6);
    }

    #[test]
    fn paper_model_interrupt_scale_sanity() {
        // The published parabola peaks at int_lin / (2·|int_quad|)
        // ≈ 4.77e-9 interrupts/cycle (≈ 10–15 interrupts/s per CPU),
        // where the dynamic contribution is ~0.25 W per CPU — matching
        // the paper's tiny disk dynamic range over the 21.6 W DC term.
        let m = DiskPowerModel::paper();
        let dynamic = m.predict(&sample(4.77e-9, 0.0)) - 21.6;
        assert!(dynamic > 0.6 && dynamic < 1.4, "dynamic {dynamic}");
        // Past the vertex the published model bends down again.
        let further = m.predict(&sample(9e-9, 0.0)) - 21.6;
        assert!(further < dynamic);
    }

    #[test]
    fn extreme_rates_never_predict_negative_watts() {
        // Regression: the published quadratics have negative curvature
        // (int_quad −11.1e15, dma_quad −45.4), so out-of-calibration
        // rates used to drive predict() far below 0 W. 1e-6
        // interrupts/cycle is ~200× past the parabola's vertex; the raw
        // polynomial sits around −44 kW before clamping.
        let m = DiskPowerModel::paper();
        for (ints, dma) in [(1e-6, 0.0), (0.0, 5.0), (1e-5, 10.0), (1.0, 1.0)] {
            let w = m.predict(&sample(ints, dma));
            assert!(w >= 0.0, "ints {ints} dma {dma} predicted {w} W");
            let ceiling = m.dc_w + 4.0 * m.dynamic_peak();
            assert!(
                w <= ceiling,
                "ints {ints} dma {dma}: {w} > ceiling {ceiling}"
            );
        }
        // In-range predictions are bit-identical to the raw polynomial
        // (aggregated in the same CPU order).
        let in_range = sample(2e-9, 1e-3);
        let (mut i_s, mut i_q, mut d_s, mut d_q) = (0.0f64, 0.0, 0.0, 0.0);
        for _ in 0..4 {
            i_s += 2e-9;
            i_q += 2e-9 * 2e-9;
            d_s += 1e-3;
            d_q += 1e-3 * 1e-3;
        }
        let raw = quad_poly(m.dc_w, m.int_lin, m.int_quad, i_s, i_q)
            + quad_poly(0.0, m.dma_lin, m.dma_quad, d_s, d_q);
        assert_eq!(m.predict(&in_range).to_bits(), raw.to_bits());
    }

    #[test]
    fn fit_recovers_two_input_quadratic() {
        let truth = DiskPowerModel {
            dc_w: 21.5,
            int_lin: 5e7,
            int_quad: -2e14,
            dma_lin: 12.0,
            dma_quad: -30.0,
            int_valid_max: f64::INFINITY,
            dma_valid_max: f64::INFINITY,
        };
        let mut samples = Vec::new();
        let mut watts = Vec::new();
        for i in 0..80 {
            let ints = (i % 9) as f64 * 4e-9;
            let dma = (i % 7) as f64 * 2e-3;
            let s = sample(ints, dma);
            watts.push(truth.predict(&s));
            samples.push(s);
        }
        let fitted = DiskPowerModel::fit(&samples, &watts).unwrap();
        let close = |a: f64, b: f64| (a - b).abs() < 1e-3 * b.abs().max(1.0);
        assert!(close(fitted.dc_w, truth.dc_w));
        assert!(close(fitted.int_lin, truth.int_lin), "{fitted:?}");
        assert!(close(fitted.dma_lin, truth.dma_lin));
    }

    #[test]
    fn idle_trace_cannot_be_fitted() {
        let samples: Vec<SystemSample> = (0..10).map(|_| sample(0.0, 0.0)).collect();
        let watts = vec![21.6; 10];
        assert!(DiskPowerModel::fit(&samples, &watts).is_err());
    }
}
