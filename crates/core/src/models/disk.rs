//! Equation 4: the disk power model (DMA + interrupts).
//!
//! The disk is the farthest subsystem from the CPU, buffered behind the
//! processor cache, the OS page cache and the controller queues, so the
//! paper combines **two** trickle-down events: disk-controller
//! interrupts (one per completed command — timely and device-specific)
//! and DMA accesses on the memory bus (proportional to payload). The
//! model is a two-input quadratic over a large DC offset (the
//! always-spinning platters), and its error is reported after
//! subtracting that offset (§4.2.3).

use crate::input::SystemSample;
use crate::models::{fit_linear_features, quad_poly, SubsystemPowerModel};
use serde::{Deserialize, Serialize};
use tdp_counters::Subsystem;
use tdp_modeling::FitError;

/// The Equation-4 disk model:
/// `dc + Σᵢ (i_lin·intᵢ + i_quad·intᵢ² + d_lin·dmaᵢ + d_quad·dmaᵢ²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskPowerModel {
    /// DC offset: rotation + electronics, watts.
    pub dc_w: f64,
    /// Linear interrupt-rate coefficient (input: interrupts/cycle).
    pub int_lin: f64,
    /// Quadratic interrupt-rate coefficient.
    pub int_quad: f64,
    /// Linear DMA-rate coefficient (input: DMA accesses/cycle).
    pub dma_lin: f64,
    /// Quadratic DMA-rate coefficient.
    pub dma_quad: f64,
}

impl DiskPowerModel {
    /// The paper's published coefficients (Equation 4).
    pub fn paper() -> Self {
        Self {
            dc_w: 21.6,
            int_lin: 10.6e7,
            int_quad: -11.1e15,
            dma_lin: 9.18,
            dma_quad: -45.4,
        }
    }

    /// Fits the five coefficients against measured disk watts.
    ///
    /// # Errors
    ///
    /// Propagates [`FitError`]; a trace without disk activity cannot be
    /// fitted (all inputs zero → singular system).
    pub fn fit<S: std::borrow::Borrow<SystemSample>>(
        samples: &[S],
        watts: &[f64],
    ) -> Result<Self, FitError> {
        let coeffs = fit_linear_features(
            samples,
            watts,
            |s| {
                let i = |c: &crate::input::CpuRates| c.disk_interrupts_per_cycle;
                let d = |c: &crate::input::CpuRates| c.dma_per_cycle;
                vec![
                    s.sum(i),
                    s.sum(|c| i(c) * i(c)),
                    s.sum(d),
                    s.sum(|c| d(c) * d(c)),
                ]
            },
            4,
        )?;
        Ok(Self {
            dc_w: coeffs[0],
            int_lin: coeffs[1],
            int_quad: coeffs[2],
            dma_lin: coeffs[3],
            dma_quad: coeffs[4],
        })
    }

    /// The DC offset used for offset-adjusted error reporting.
    pub fn dc_offset(&self) -> f64 {
        self.dc_w
    }
}

impl SubsystemPowerModel for DiskPowerModel {
    fn subsystem(&self) -> Subsystem {
        Subsystem::Disk
    }

    fn predict(&self, sample: &SystemSample) -> f64 {
        // Aggregate both inputs and their squares in CPU order, then
        // evaluate the shared quadratic twice (interrupts carry the DC
        // term, DMA contributes dynamics only) — the same sequence the
        // fleet columns evaluate, bit for bit.
        let (mut i_sum, mut i_sq, mut d_sum, mut d_sq) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for c in &sample.per_cpu {
            let i = c.disk_interrupts_per_cycle;
            let d = c.dma_per_cycle;
            i_sum += i;
            i_sq += i * i;
            d_sum += d;
            d_sq += d * d;
        }
        quad_poly(self.dc_w, self.int_lin, self.int_quad, i_sum, i_sq)
            + quad_poly(0.0, self.dma_lin, self.dma_quad, d_sum, d_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::CpuRates;

    fn sample(ints: f64, dma: f64) -> SystemSample {
        SystemSample {
            time_ms: 0,
            window_ms: 1000,
            per_cpu: vec![
                CpuRates {
                    disk_interrupts_per_cycle: ints,
                    dma_per_cycle: dma,
                    ..CpuRates::default()
                };
                4
            ],
        }
    }

    #[test]
    fn paper_model_idle_is_pure_dc() {
        let m = DiskPowerModel::paper();
        assert!((m.predict(&sample(0.0, 0.0)) - 21.6).abs() < 1e-12);
        assert_eq!(m.dc_offset(), 21.6);
    }

    #[test]
    fn paper_model_interrupt_scale_sanity() {
        // The published parabola peaks at int_lin / (2·|int_quad|)
        // ≈ 4.77e-9 interrupts/cycle (≈ 10–15 interrupts/s per CPU),
        // where the dynamic contribution is ~0.25 W per CPU — matching
        // the paper's tiny disk dynamic range over the 21.6 W DC term.
        let m = DiskPowerModel::paper();
        let dynamic = m.predict(&sample(4.77e-9, 0.0)) - 21.6;
        assert!(dynamic > 0.6 && dynamic < 1.4, "dynamic {dynamic}");
        // Past the vertex the published model bends down again.
        let further = m.predict(&sample(9e-9, 0.0)) - 21.6;
        assert!(further < dynamic);
    }

    #[test]
    fn fit_recovers_two_input_quadratic() {
        let truth = DiskPowerModel {
            dc_w: 21.5,
            int_lin: 5e7,
            int_quad: -2e14,
            dma_lin: 12.0,
            dma_quad: -30.0,
        };
        let mut samples = Vec::new();
        let mut watts = Vec::new();
        for i in 0..80 {
            let ints = (i % 9) as f64 * 4e-9;
            let dma = (i % 7) as f64 * 2e-3;
            let s = sample(ints, dma);
            watts.push(truth.predict(&s));
            samples.push(s);
        }
        let fitted = DiskPowerModel::fit(&samples, &watts).unwrap();
        let close = |a: f64, b: f64| (a - b).abs() < 1e-3 * b.abs().max(1.0);
        assert!(close(fitted.dc_w, truth.dc_w));
        assert!(close(fitted.int_lin, truth.int_lin), "{fitted:?}");
        assert!(close(fitted.dma_lin, truth.dma_lin));
    }

    #[test]
    fn idle_trace_cannot_be_fitted() {
        let samples: Vec<SystemSample> = (0..10).map(|_| sample(0.0, 0.0)).collect();
        let watts = vec![21.6; 10];
        assert!(DiskPowerModel::fit(&samples, &watts).is_err());
    }
}
