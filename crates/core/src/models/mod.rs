//! The five subsystem power models (the paper's Equations 1–5).
//!
//! Every model consumes only CPU-visible event rates ([`SystemSample`])
//! and produces watts for one subsystem. Each offers two constructors:
//!
//! * `paper()` — the coefficients published in the paper, kept verbatim
//!   for reference and for coefficient-comparison experiments. Note that
//!   the paper's typography loses parenthesisation: for the shared
//!   subsystems (memory, disk, I/O) the DC term is a *system* constant,
//!   not summed per CPU — idle memory power is 28 W, not 4 × 28 W. The
//!   constructors implement that reading.
//! * `fit(samples, watts)` — least-squares calibration against measured
//!   traces from *this* testbed, which is what validation uses (our
//!   simulated server is not the authors' hardware, so published
//!   absolute coefficients are not expected to transfer).

mod chipset;
mod cpu;
mod disk;
mod io;
mod memory;

pub use chipset::ChipsetPowerModel;
pub use cpu::CpuPowerModel;
pub use disk::DiskPowerModel;
pub use io::IoPowerModel;
pub use memory::{MemoryInput, MemoryPowerModel};

use crate::input::SystemSample;
use serde::{Deserialize, Serialize};
use tdp_counters::Subsystem;
use tdp_modeling::FitError;
use tdp_powermeter::SubsystemPower;

/// The shared quadratic form of Equations 2–5:
/// `dc + lin·x + quad·x_sq`, with the squared input passed explicitly.
///
/// Every off-CPU subsystem model (memory, disk, I/O) is this one
/// polynomial over machine-aggregated inputs, and `tdp-fleet`'s column
/// kernels evaluate the very same expression over whole fleet columns.
/// Keeping the arithmetic in one `#[inline]` function makes the scalar
/// and batched paths agree **bit for bit**: both compute
/// `(dc + lin·x) + quad·x_sq` in exactly this association, so identical
/// inputs give identical output bits (pinned by
/// `crates/fleet/tests/quad_crosscheck.rs`).
///
/// `x_sq` is a parameter rather than `x * x` so callers that carry the
/// squared aggregate separately (the fleet columns materialise Σx² at
/// ingest) evaluate the same expression as callers that square inline.
#[inline]
pub fn quad_poly(dc: f64, lin: f64, quad: f64, x: f64, x_sq: f64) -> f64 {
    dc + lin * x + quad * x_sq
}

/// Clamps one subsystem prediction to `[0, ceil]` watts.
///
/// The paper's quadratics (Equations 2–5) are fits, valid only inside
/// the calibrated input range — the paper itself documents Equation 2
/// "failing under extreme cases" at high utilization (§4.2.2), and the
/// published disk/IO coefficients have *negative* curvature, so rates
/// past the parabola's vertex drive the raw polynomial below zero. A
/// power estimate below 0 W (or above what the calibrated range can
/// produce) is physically meaningless, so predictions are saturated
/// instead of silently reported.
///
/// The comparison sequence here (`< 0`, then `> ceil`, else identity)
/// is the single definition both the scalar models and `tdp-fleet`'s
/// column kernels apply, keeping the two paths bit-identical.
#[inline]
pub fn clamp_watts(w: f64, ceil: f64) -> f64 {
    if w < 0.0 {
        0.0
    } else if w > ceil {
        ceil
    } else {
        w
    }
}

/// Maximum of the per-CPU dynamic term `lin·x + quad·x²` over the
/// calibrated input range `x ∈ [0, x_max]` (never below 0: `x = 0` is
/// always in range).
///
/// This is the building block of a model's prediction ceiling: with
/// per-CPU inputs confined to `[0, x_max]`, the machine-aggregated
/// dynamic contribution `lin·Σxᵢ + quad·Σxᵢ²` cannot exceed
/// `n · dynamic_peak_per_cpu(...)`, because it decomposes as
/// `Σᵢ (lin·xᵢ + quad·xᵢ²)` — one bounded term per CPU. For an
/// unbounded range (`x_max = ∞`) with negative curvature the peak is
/// the parabola's vertex, so even uncalibrated paper models get a
/// finite ceiling that valid data can never cross; with non-negative
/// curvature the peak is unbounded and the ceiling degenerates to
/// "non-negative floor only".
pub fn dynamic_peak_per_cpu(lin: f64, quad: f64, x_max: f64) -> f64 {
    let f = |x: f64| lin * x + quad * x * x;
    let mut peak = 0.0f64;
    if x_max.is_finite() {
        peak = peak.max(f(x_max));
    } else if quad > 0.0 || (quad == 0.0 && lin > 0.0) {
        return f64::INFINITY;
    }
    if quad < 0.0 {
        let vertex = -lin / (2.0 * quad);
        if vertex > 0.0 && vertex < x_max {
            peak = peak.max(f(vertex));
        }
    }
    peak
}

/// Serde default for validity-range fields: unbounded.
///
/// `serde_json` cannot represent `f64::INFINITY` (it serialises to
/// `null`), so unbounded ranges are *skipped* on write and restored by
/// this default on read — see the `skip_serializing_if` attributes on
/// the model structs.
pub(crate) fn unbounded() -> f64 {
    f64::INFINITY
}

/// Serde skip predicate paired with [`unbounded`].
#[allow(clippy::trivially_copy_pass_by_ref)] // signature fixed by serde
pub(crate) fn is_unbounded(v: &f64) -> bool {
    v.is_infinite()
}

/// A power model for one subsystem, driven purely by CPU performance
/// events.
///
/// This trait is sealed: the five implementations are the paper's five
/// subsystems, and [`SystemPowerModel`] composes them by value.
pub trait SubsystemPowerModel: sealed::Sealed {
    /// Which subsystem this model predicts.
    fn subsystem(&self) -> Subsystem;

    /// Predicted watts for one sampling window.
    fn predict(&self, sample: &SystemSample) -> f64;
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::CpuPowerModel {}
    impl Sealed for super::MemoryPowerModel {}
    impl Sealed for super::DiskPowerModel {}
    impl Sealed for super::IoPowerModel {}
    impl Sealed for super::ChipsetPowerModel {}
}

/// The composed complete-system model: one sub-model per subsystem.
///
/// # Example
///
/// ```
/// use trickledown::{SystemPowerModel, SystemSample};
/// use tdp_simsys::{Machine, MachineConfig};
///
/// let model = SystemPowerModel::paper();
/// let mut machine = Machine::new(MachineConfig::default());
/// for _ in 0..1000 { machine.tick(); }
/// let sample = SystemSample::from_sample_set(&machine.read_counters());
/// let estimate = model.predict(&sample);
/// // An idle machine: every subsystem near its DC term.
/// assert!(estimate.total() > 100.0 && estimate.total() < 200.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemPowerModel {
    /// Equation 1.
    pub cpu: CpuPowerModel,
    /// Equation 2 or 3 (selectable input).
    pub memory: MemoryPowerModel,
    /// Equation 4.
    pub disk: DiskPowerModel,
    /// Equation 5.
    pub io: IoPowerModel,
    /// The constant chipset model.
    pub chipset: ChipsetPowerModel,
}

impl SystemPowerModel {
    /// The model with the paper's published coefficients.
    pub fn paper() -> Self {
        Self {
            cpu: CpuPowerModel::paper(),
            memory: MemoryPowerModel::paper_bus(),
            disk: DiskPowerModel::paper(),
            io: IoPowerModel::paper(),
            chipset: ChipsetPowerModel::paper(),
        }
    }

    /// Predicts all five subsystems for one window.
    pub fn predict(&self, sample: &SystemSample) -> SubsystemPower {
        let mut p = SubsystemPower::default();
        p.set(Subsystem::Cpu, self.cpu.predict(sample));
        p.set(Subsystem::Memory, self.memory.predict(sample));
        p.set(Subsystem::Disk, self.disk.predict(sample));
        p.set(Subsystem::Io, self.io.predict(sample));
        p.set(Subsystem::Chipset, self.chipset.predict(sample));
        p
    }

    /// Predicted watts for one named subsystem.
    pub fn predict_subsystem(&self, s: Subsystem, sample: &SystemSample) -> f64 {
        match s {
            Subsystem::Cpu => self.cpu.predict(sample),
            Subsystem::Memory => self.memory.predict(sample),
            Subsystem::Disk => self.disk.predict(sample),
            Subsystem::Io => self.io.predict(sample),
            Subsystem::Chipset => self.chipset.predict(sample),
        }
    }

    /// Serialises to pretty JSON (for persistence of calibrated
    /// coefficients).
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` serialisation failures (practically
    /// impossible for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Loads a model previously saved with
    /// [`to_json`](SystemPowerModel::to_json).
    ///
    /// # Errors
    ///
    /// Returns the `serde_json` error if the input is not a valid model.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Shared fitting plumbing: least-squares on system-level aggregate
/// features with a fixed feature extractor.
///
/// Generic over owned (`&[SystemSample]`) and borrowed
/// (`&[&SystemSample]`) sample slices so callers can fit straight from
/// a captured [`Trace`](crate::testbed::Trace) without cloning records.
pub(crate) fn fit_linear_features<S: std::borrow::Borrow<SystemSample>>(
    samples: &[S],
    watts: &[f64],
    extract: impl Fn(&SystemSample) -> Vec<f64>,
    n_features: usize,
) -> Result<Vec<f64>, FitError> {
    let xs: Vec<Vec<f64>> = samples.iter().map(|s| extract(s.borrow())).collect();
    debug_assert!(xs.iter().all(|r| r.len() == n_features));
    let map = tdp_modeling::FeatureMap::linear(n_features);
    let model = tdp_modeling::fit_least_squares_ridge(&map, &xs, watts, 1e-9)?;
    Ok(model.coefficients().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::CpuRates;

    pub(crate) fn idle_sample(num_cpus: usize) -> SystemSample {
        SystemSample {
            time_ms: 1000,
            window_ms: 1000,
            per_cpu: vec![
                CpuRates {
                    active_frac: 0.01,
                    fetched_upc: 0.01,
                    ..CpuRates::default()
                };
                num_cpus
            ],
        }
    }

    #[test]
    fn paper_model_idle_prediction_matches_table1_scale() {
        let model = SystemPowerModel::paper();
        let p = model.predict(&idle_sample(4));
        assert!((p.get(Subsystem::Cpu) - 38.4).abs() < 3.0);
        assert!((p.get(Subsystem::Chipset) - 19.9).abs() < 0.01);
        assert!((p.get(Subsystem::Memory) - 29.2).abs() < 1.5);
        assert!((p.get(Subsystem::Disk) - 21.6).abs() < 0.1);
        assert!((p.get(Subsystem::Io) - 32.7).abs() < 0.1);
    }

    #[test]
    fn json_roundtrip() {
        let model = SystemPowerModel::paper();
        let json = model.to_json().unwrap();
        let back = SystemPowerModel::from_json(&json).unwrap();
        assert_eq!(model, back);
    }

    #[test]
    fn predict_subsystem_agrees_with_predict() {
        let model = SystemPowerModel::paper();
        let s = idle_sample(4);
        let all = model.predict(&s);
        for &sub in Subsystem::ALL {
            assert_eq!(model.predict_subsystem(sub, &s), all.get(sub));
        }
    }
}
