//! The chipset model: a constant.
//!
//! "The chipset power model we propose is the simplest of all subsystems
//! as we suggest that a constant is all that is required" (§4.2.5): the
//! subsystem shows little variation, and the measurement environment
//! cannot isolate its multiple power domains well enough to fit
//! anything richer. The paper accepts the resulting error ("Chipset
//! error was very high considering the small amount of variation") as
//! the price of the constant.

use crate::input::SystemSample;
use crate::models::{clamp_watts, SubsystemPowerModel};
use serde::{Deserialize, Serialize};
use tdp_counters::Subsystem;
use tdp_modeling::FitError;

/// The constant chipset model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipsetPowerModel {
    /// The constant, watts.
    pub constant_w: f64,
}

impl ChipsetPowerModel {
    /// The paper's constant: 19.9 W.
    pub fn paper() -> Self {
        Self { constant_w: 19.9 }
    }

    /// "Fits" the constant as the mean of the measured trace.
    ///
    /// # Errors
    ///
    /// Returns [`FitError::NotEnoughSamples`] on an empty trace.
    pub fn fit(watts: &[f64]) -> Result<Self, FitError> {
        if watts.is_empty() {
            return Err(FitError::NotEnoughSamples {
                samples: 0,
                coefficients: 1,
            });
        }
        Ok(Self {
            constant_w: watts.iter().sum::<f64>() / watts.len() as f64,
        })
    }
}

impl SubsystemPowerModel for ChipsetPowerModel {
    fn subsystem(&self) -> Subsystem {
        Subsystem::Chipset
    }

    fn predict(&self, _sample: &SystemSample) -> f64 {
        // A fitted constant is a mean of measurements and can only be
        // negative if the calibration trace was garbage — saturate at
        // the floor all the same.
        clamp_watts(self.constant_w, f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ignores_inputs() {
        let m = ChipsetPowerModel::paper();
        let s = SystemSample {
            time_ms: 0,
            window_ms: 1000,
            per_cpu: vec![],
        };
        assert_eq!(m.predict(&s), 19.9);
        assert_eq!(m.subsystem(), Subsystem::Chipset);
    }

    #[test]
    fn fit_is_the_mean() {
        let m = ChipsetPowerModel::fit(&[19.0, 21.0, 20.0]).unwrap();
        assert!((m.constant_w - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fit_rejected() {
        assert!(ChipsetPowerModel::fit(&[]).is_err());
    }
}
