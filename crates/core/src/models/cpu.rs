//! Equation 1: the SMP CPU power model.
//!
//! ```text
//! NumCPUs
//!   Σ   9.25 + (35.7 − 9.25) · PercentActiveᵢ + 4.31 · FetchedUopsᵢ/Cycle
//!  i=1
//! ```
//!
//! The halted-cycle term is what makes this the "first application of a
//! performance-based power model in an SMP environment" (§4.2.1): with
//! per-CPU `PercentActive` the model attributes power to individual
//! physical processors, which the paper motivates with per-process power
//! billing in shared/virtualised machines.

use crate::input::SystemSample;
use crate::models::{clamp_watts, fit_linear_features, SubsystemPowerModel};
use serde::{Deserialize, Serialize};
use tdp_counters::Subsystem;
use tdp_modeling::FitError;

/// The Equation-1 CPU model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuPowerModel {
    /// Watts of one fully halted CPU.
    pub halt_w: f64,
    /// Watts of one fully active CPU at zero fetch throughput.
    pub active_w: f64,
    /// Watts per fetched uop/cycle.
    pub upc_w: f64,
}

impl CpuPowerModel {
    /// The paper's published coefficients.
    pub fn paper() -> Self {
        Self {
            halt_w: 9.25,
            active_w: 35.7,
            upc_w: 4.31,
        }
    }

    /// Fits the three coefficients against measured CPU-subsystem watts.
    ///
    /// # Errors
    ///
    /// Propagates [`FitError`] from the least-squares solver (too few
    /// samples, collinear inputs — e.g. a training trace with no idle
    /// phase cannot separate `halt_w` from `active_w`).
    pub fn fit<S: std::borrow::Borrow<SystemSample>>(
        samples: &[S],
        watts: &[f64],
    ) -> Result<Self, FitError> {
        let num_cpus = samples.first().map_or(1, |s| s.borrow().num_cpus()) as f64;
        let coeffs = fit_linear_features(
            samples,
            watts,
            |s| vec![s.sum(|c| c.active_frac), s.sum(|c| c.fetched_upc)],
            2,
        )?;
        // total = N·halt + (active−halt)·Σactive + upc_w·Σupc
        let halt_w = coeffs[0] / num_cpus;
        Ok(Self {
            halt_w,
            active_w: halt_w + coeffs[1],
            upc_w: coeffs[2],
        })
    }

    /// Power attributed to a single CPU — the per-processor accounting
    /// the paper highlights for billing (§4.2.1).
    pub fn predict_single(&self, rates: &crate::input::CpuRates) -> f64 {
        self.halt_w
            + (self.active_w - self.halt_w) * rates.active_frac
            + self.upc_w * rates.fetched_upc
    }
}

impl SubsystemPowerModel for CpuPowerModel {
    fn subsystem(&self) -> Subsystem {
        Subsystem::Cpu
    }

    fn predict(&self, sample: &SystemSample) -> f64 {
        // The linear Eq. 1 cannot go negative on valid inputs
        // (active_frac ∈ [0, 1], upc ≥ 0), but fitted coefficients fed
        // corrupt rates can — saturate at the non-negative floor like
        // every other subsystem. For in-range data the clamp is the
        // identity, bit for bit.
        let raw: f64 = sample.per_cpu.iter().map(|c| self.predict_single(c)).sum();
        clamp_watts(raw, f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::CpuRates;

    fn sample(cpus: Vec<CpuRates>) -> SystemSample {
        SystemSample {
            time_ms: 0,
            window_ms: 1000,
            per_cpu: cpus,
        }
    }

    #[test]
    fn paper_range_matches_section_4_2_1() {
        // "the model predicts range of power consumption from 9.25 Watts
        // to 48.6 Watts" per CPU.
        let m = CpuPowerModel::paper();
        let idle = m.predict_single(&CpuRates::default());
        assert!((idle - 9.25).abs() < 1e-12);
        let flat_out = m.predict_single(&CpuRates {
            active_frac: 1.0,
            fetched_upc: 3.0,
            ..CpuRates::default()
        });
        assert!((flat_out - 48.63).abs() < 0.05);
    }

    #[test]
    fn fit_recovers_known_coefficients() {
        let truth = CpuPowerModel {
            halt_w: 9.0,
            active_w: 36.0,
            upc_w: 4.5,
        };
        let mut samples = Vec::new();
        let mut watts = Vec::new();
        for i in 0..60 {
            let a = (i % 11) as f64 / 10.0;
            let b = ((i * 3) % 7) as f64 / 7.0;
            let u = (i % 5) as f64 / 2.0;
            let s = sample(vec![
                CpuRates {
                    active_frac: a,
                    fetched_upc: u * a.max(0.05),
                    ..CpuRates::default()
                },
                CpuRates {
                    active_frac: b,
                    fetched_upc: (2.0 - u).max(0.0) * b,
                    ..CpuRates::default()
                },
            ]);
            watts.push(truth.predict(&s));
            samples.push(s);
        }
        let fitted = CpuPowerModel::fit(&samples, &watts).unwrap();
        assert!((fitted.halt_w - truth.halt_w).abs() < 1e-6);
        assert!((fitted.active_w - truth.active_w).abs() < 1e-6);
        assert!((fitted.upc_w - truth.upc_w).abs() < 1e-6);
    }

    #[test]
    fn per_cpu_attribution_sums_to_total() {
        let m = CpuPowerModel::paper();
        let s = sample(vec![
            CpuRates {
                active_frac: 1.0,
                fetched_upc: 1.0,
                ..CpuRates::default()
            },
            CpuRates::default(),
        ]);
        let total = m.predict(&s);
        let per: f64 = s.per_cpu.iter().map(|c| m.predict_single(c)).sum();
        assert_eq!(total, per);
    }

    #[test]
    fn fit_without_variation_fails() {
        let s = sample(vec![CpuRates::default()]);
        let samples = vec![s.clone(), s.clone(), s.clone(), s];
        let watts = vec![9.25; 4];
        assert!(CpuPowerModel::fit(&samples, &watts).is_err());
    }
}
